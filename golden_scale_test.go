// Scale-suite goldens: the two midsize carriers (mid5k, mid10k) are
// mapped at every technology target in area mode and pinned exactly like
// the paper suite, and every scale generator's *input* BLIF is pinned by
// hash — the 50k–500k-gate circuits are too large to map in the golden
// harness, but a drifting generator would silently invalidate every
// benchmark number published against them, so the seed → bytes contract
// is enforced here.
//
// Refresh (intentional changes only) with
//
//	go test -run 'TestGoldenScaleMapping|TestGoldenGeneratedBLIF' -update-golden .
//
// Updates merge into testdata/golden.json, so a scale refresh never
// touches the paper-suite entries (and vice versa).
package lily_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"lily"
)

// scaleGoldenCircuits are the midsize carriers small enough to run the
// full verified mapping pipeline in the golden harness.
var scaleGoldenCircuits = []string{"mid5k", "mid10k"}

// scaleGoldenCases is the (objective, target) grid pinned per carrier:
// area mode at every technology target. Delay mode at these sizes is
// covered by the determinism soak, not a golden.
func scaleGoldenCases(circuit string) []struct {
	obj lily.Objective
	tgt lily.TechnologyTarget
	key string
} {
	type gc = struct {
		obj lily.Objective
		tgt lily.TechnologyTarget
		key string
	}
	return []gc{
		{lily.ObjectiveArea, lily.TargetASIC, goldenKey(circuit, lily.ObjectiveArea)},
		{lily.ObjectiveArea, lily.TargetLUT4, lutGoldenKey(circuit, lily.ObjectiveArea, lily.TargetLUT4)},
		{lily.ObjectiveArea, lily.TargetLUT6, lutGoldenKey(circuit, lily.ObjectiveArea, lily.TargetLUT6)},
	}
}

// TestGoldenScaleMapping extends the golden harness to the midsize
// generated circuits: mapped, equivalence-verified, and pinned by BLIF
// hash and cost metrics.
func TestGoldenScaleMapping(t *testing.T) {
	if *updateGolden {
		goldens := make(map[string]goldenEntry)
		for _, circuit := range scaleGoldenCircuits {
			for _, c := range scaleGoldenCases(circuit) {
				goldens[c.key] = mapGolden(t, circuit, c.obj, c.tgt)
			}
		}
		mergeGoldens(t, goldens)
		return
	}

	goldens := loadGoldens(t)
	for _, circuit := range scaleGoldenCircuits {
		for _, c := range scaleGoldenCases(circuit) {
			circuit, c := circuit, c
			t.Run(c.key, func(t *testing.T) {
				if testing.Short() && circuit == "mid10k" {
					t.Skip("skipping mid10k under -short (covered by the full run)")
				}
				want, ok := goldens[c.key]
				if !ok {
					t.Fatalf("no golden for %s (refresh with -update-golden)", c.key)
				}
				got := mapGolden(t, circuit, c.obj, c.tgt)
				if got.BLIFSHA256 != want.BLIFSHA256 {
					t.Errorf("mapped BLIF hash drifted: got %s want %s\n"+
						"the mapper's output changed — if intentional, refresh with -update-golden",
						got.BLIFSHA256, want.BLIFSHA256)
				}
				if got.Gates != want.Gates {
					t.Errorf("gates = %d, want %d", got.Gates, want.Gates)
				}
				check := func(name string, got, want float64) {
					if math.Abs(got-want) > goldenTol {
						t.Errorf("%s = %.12f, want %.12f (|Δ| = %g > %g)",
							name, got, want, math.Abs(got-want), goldenTol)
					}
				}
				check("active_area_mm2", got.ActiveAreaMM2, want.ActiveAreaMM2)
				check("chip_area_mm2", got.ChipAreaMM2, want.ChipAreaMM2)
				check("wirelength_mm", got.WirelengthMM, want.WirelengthMM)
				check("delay_ns", got.DelayNS, want.DelayNS)
			})
		}
	}
}

// genGoldenEntry pins a scale generator's output: the SHA-256 of the
// generated circuit's BLIF serialization and its node count (stored in
// the Gates field; the mapping metrics stay zero — nothing is mapped).
func genGoldenEntry(t *testing.T, name string) goldenEntry {
	t.Helper()
	c, err := lily.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return goldenEntry{
		BLIFSHA256: hex.EncodeToString(sum[:]),
		Gates:      c.Stats().Nodes,
	}
}

// TestGoldenGeneratedBLIF pins the seed → BLIF bytes contract of every
// scale generator under "gen/<name>" keys.
func TestGoldenGeneratedBLIF(t *testing.T) {
	if *updateGolden {
		goldens := make(map[string]goldenEntry)
		for _, name := range lily.ScaleBenchmarkNames() {
			goldens["gen/"+name] = genGoldenEntry(t, name)
		}
		mergeGoldens(t, goldens)
		return
	}

	goldens := loadGoldens(t)
	for _, name := range lily.ScaleBenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && (name == "gen200k" || name == "gen500k") {
				t.Skip("skipping the largest generators under -short")
			}
			want, ok := goldens["gen/"+name]
			if !ok {
				t.Fatalf("no golden for gen/%s (refresh with -update-golden)", name)
			}
			got := genGoldenEntry(t, name)
			if got.BLIFSHA256 != want.BLIFSHA256 {
				t.Errorf("generated BLIF hash drifted: got %s want %s\n"+
					"the generator's output changed — if intentional, refresh with -update-golden "+
					"and re-baseline every benchmark number published against this circuit",
					got.BLIFSHA256, want.BLIFSHA256)
			}
			if got.Gates != want.Gates {
				t.Errorf("node count = %d, want %d", got.Gates, want.Gates)
			}
		})
	}
}
