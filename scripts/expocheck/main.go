// Command expocheck validates Prometheus text exposition format v0.0.4
// read from stdin: every sample line must parse (name[{selector}] value),
// every family must be introduced by a # TYPE line with a known kind
// before its first sample, no family may be TYPEd twice, and histogram
// series must be internally consistent (_count equals the +Inf bucket
// for every selector). -require lists metric families that must be
// present. Exit status 0 on success, 1 on any violation.
//
// The CI obs-smoke job pipes lilyd's GET /metrics through this tool, so
// an unparsable exposition fails the build.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()
	if err := check(os.Stdin, splitNonEmpty(*require)); err != nil {
		fmt.Fprintf(os.Stderr, "expocheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("expocheck: OK")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// histKey identifies one histogram series (family + label prefix).
type histKey struct {
	family string
	labels string // selector minus the le pair
}

func check(r *os.File, required []string) error {
	typed := make(map[string]string) // family -> kind
	samples := 0
	counts := make(map[histKey]float64)
	infs := make(map[histKey]float64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineno, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineno, kind)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: family %s TYPEd twice", lineno, name)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unexpected comment %q", lineno, line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return fmt.Errorf("line %d: malformed sample %q", lineno, line)
		}
		key, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparsable value %q: %v", lineno, valStr, err)
		}
		name, selector := key, ""
		if j := strings.IndexByte(key, '{'); j >= 0 {
			if !strings.HasSuffix(key, "}") {
				return fmt.Errorf("line %d: malformed selector in %q", lineno, key)
			}
			name, selector = key[:j], key[j+1:len(key)-1]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && typed[trimmed] == "histogram" {
				family = trimmed
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineno, line)
		}
		samples++

		// Histogram consistency bookkeeping.
		if typed[family] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_count"):
				counts[histKey{family, selector}] = v
			case strings.HasSuffix(name, "_bucket"):
				le, rest := "", make([]string, 0, 4)
				for _, pair := range strings.Split(selector, ",") {
					if cut, ok := strings.CutPrefix(pair, "le="); ok {
						le = strings.Trim(cut, `"`)
					} else if pair != "" {
						rest = append(rest, pair)
					}
				}
				if le == "+Inf" {
					infs[histKey{family, strings.Join(rest, ",")}] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for k, cnt := range counts {
		inf, ok := infs[k]
		if !ok {
			return fmt.Errorf("histogram %s{%s} has _count but no +Inf bucket", k.family, k.labels)
		}
		if cnt != inf {
			return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", k.family, k.labels, cnt, inf)
		}
	}
	for _, name := range required {
		if _, ok := typed[name]; !ok {
			return fmt.Errorf("required family %s missing", name)
		}
	}
	return nil
}
