#!/usr/bin/env bash
# Observability smoke test: start lilyd, run one real mapping job, then
# assert GET /metrics serves parsable Prometheus exposition (including
# the job- and phase-duration histograms) and GET /v1/jobs/{id}/trace
# returns a span tree covering the pipeline phases. Run from the repo
# root; CI runs this as the obs-smoke job.
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$LILYD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/lilyd" ./cmd/lilyd

echo "== start lilyd on $ADDR"
"$TMP/lilyd" -addr "$ADDR" -workers 2 -log-format json >"$TMP/lilyd.log" 2>&1 &
LILYD_PID=$!

for i in $(seq 1 100); do
    if curl -fs "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$LILYD_PID" 2>/dev/null; then
        echo "lilyd died during startup:" >&2
        cat "$TMP/lilyd.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fs "$BASE/healthz" >/dev/null

echo "== submit job"
SUBMIT=$(curl -fs -X POST "$BASE/v1/jobs" -d '{
    "benchmark": "misex1",
    "options": {"mapper": "lily", "objective": "area", "fanout_optimize": true}
}')
JOB_ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
if [ -z "$JOB_ID" ]; then
    echo "could not extract job id from: $SUBMIT" >&2
    exit 1
fi
echo "   job: $JOB_ID"

echo "== wait for completion"
STATE=""
for i in $(seq 1 30); do
    STATUS=$(curl -fs "$BASE/v1/jobs/$JOB_ID?wait=5s")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled)
            echo "job terminated $STATE: $STATUS" >&2
            exit 1 ;;
    esac
done
if [ "$STATE" != "done" ]; then
    echo "job never finished (last state: $STATE)" >&2
    exit 1
fi

echo "== scrape /metrics and validate exposition"
CT=$(curl -fs -o "$TMP/metrics.txt" -w '%{content_type}' "$BASE/metrics")
case "$CT" in
    "text/plain; version=0.0.4"*) ;;
    *)  echo "unexpected /metrics Content-Type: $CT" >&2
        exit 1 ;;
esac
go run ./scripts/expocheck \
    -require "lily_job_duration_seconds,lily_phase_duration_seconds,lily_jobs_total,lily_jobs_submitted_total,lily_cones_mapped_total,lily_wire_cost_evaluations_total,lily_http_requests_total" \
    <"$TMP/metrics.txt"

echo "== fetch trace and check phase coverage"
curl -fs "$BASE/v1/jobs/$JOB_ID/trace" >"$TMP/trace.json"
for phase in job premap placement cover fanout layout timing; do
    if ! grep -q "\"name\": *\"$phase\"" "$TMP/trace.json"; then
        echo "trace missing $phase span:" >&2
        cat "$TMP/trace.json" >&2
        exit 1
    fi
done

echo "== graceful shutdown"
kill -TERM "$LILYD_PID"
for i in $(seq 1 100); do
    kill -0 "$LILYD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$LILYD_PID" 2>/dev/null; then
    echo "lilyd did not exit after SIGTERM" >&2
    exit 1
fi

echo "obs-smoke: OK"
