// Command benchperf is the performance-regression harness for the Lily
// mapping pipeline (DESIGN.md §11). It runs the hot-path benchmarks with
// a single timed iteration each, captures the mapper's wire-cost
// evaluation count in-process through the obs flow metrics, and emits a
// JSON snapshot (BENCH_PR5.json at the repo root). With -baseline it
// additionally compares the fresh run against a committed snapshot and
// exits non-zero when any metric regresses beyond its tolerance:
//
//	go run ./scripts/benchperf -out BENCH_PR5.json          # record
//	go run ./scripts/benchperf -baseline BENCH_PR5.json     # CI gate
//
// Two tolerance knobs exist because the metrics differ in nature:
// allocs/op and wire-cost evaluations are deterministic (same inputs,
// same counts on every machine) and gate at -tolerance (default 10%);
// ns/op depends on the host and on the single-iteration benchtime, so it
// gates at the looser -time-tolerance (default 50%) that still catches
// order-of-magnitude slowdowns without flaking on shared CI runners.
// ns/op is compared per benchmark only when the baseline is at least
// -min-ns (millisecond-scale circuits are pure scheduler noise at one
// iteration) and additionally in aggregate over every shared benchmark,
// which catches death-by-a-thousand-cuts slowdowns the floor excludes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"lily"
	"lily/internal/obs"
)

// benchTarget names one `go test -bench` invocation the harness drives.
type benchTarget struct {
	Pattern string // anchored -bench regexp
	Pkg     string // package path relative to the module root
}

var targets = []benchTarget{
	{Pattern: "^BenchmarkPipelineC5315$", Pkg: "."},
	{Pattern: "^BenchmarkPipelineC5315Parallel$", Pkg: "."},
	{Pattern: "^BenchmarkPipelineC5315LUT[46]$", Pkg: "."},
	{Pattern: "^BenchmarkTable1Full$", Pkg: "."},
	{Pattern: "^BenchmarkEngineSuite$", Pkg: "./internal/engine/"},
}

// wireEvalCircuits is the fixed circuit sample whose summed wire-cost
// evaluation count is recorded. The count is a pure function of the
// mapper's DP structure, so any drift means the cover loop changed shape.
var wireEvalCircuits = []string{"9symml", "C432", "C880", "apex7", "duke2", "e64", "misex1"}

// gpsProfiles is the scale-suite sample for the gates-per-second series:
// three sizes spanning 2k to 20k generated nodes, each run through the
// complete pipeline once. Larger profiles exist (gen100k–gen500k) but
// belong to the scale-smoke job, not the per-PR perf gate.
var gpsProfiles = []string{"mid5k", "mid10k", "gen50k"}

// result is one benchmark line: the three quantities the regression gate
// compares.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// snapshot is the serialized form of BENCH_PR5.json.
type snapshot struct {
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go_version"`
	Benchmarks map[string]result `json:"benchmarks"`
	// WireCostEvaluations is the mapper DP's candidate-evaluation count
	// over wireEvalCircuits, read from the lily_wire_cost_evaluations
	// counter (internal/obs). Deterministic across machines.
	WireCostEvaluations uint64 `json:"wire_cost_evaluations"`
	// WireCostEvaluationsByTarget is the same probe per technology
	// target ("asic" repeats WireCostEvaluations; "lut4"/"lut6" run the
	// cut backend). Each is deterministic, so each gates at -tolerance.
	WireCostEvaluationsByTarget map[string]uint64 `json:"wire_cost_evaluations_by_target,omitempty"`
	// ConesMapped is the committed-cone count over the same sample.
	ConesMapped uint64 `json:"cones_mapped"`
	// NumCPU records the host width the snapshot was taken at, for
	// interpreting ParallelSpeedup (a 1-CPU host can only report ~1×).
	NumCPU int `json:"num_cpu"`
	// ParallelSpeedup is ns/op of the sequential C5315 pipeline over the
	// Parallelism=NumCPU run — the wave-parallel mapper's wall-clock win
	// (DESIGN.md §13). Gated at -min-speedup on hosts wide enough for
	// the target to be meaningful.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// GatesPerSecond is the full-pipeline throughput (generated nodes per
	// wall-clock second) for each scale profile in gpsProfiles — the
	// frontier-scaling series the ROADMAP tracks. Wall-clock-based, so it
	// gates at -time-tolerance (a drop beyond it fails the build).
	GatesPerSecond map[string]float64 `json:"gates_per_second,omitempty"`
}

func main() {
	out := flag.String("out", "", "write the fresh snapshot to this file")
	baseline := flag.String("baseline", "", "compare against this committed snapshot and fail on regression")
	tol := flag.Float64("tolerance", 0.10, "allowed fractional regression for deterministic metrics (allocs/op, wire evals)")
	timeTol := flag.Float64("time-tolerance", 0.50, "allowed fractional regression for ns/op")
	minNs := flag.Float64("min-ns", 5e8, "per-benchmark ns/op gate applies only above this baseline")
	minSpeedup := flag.Float64("min-speedup", 1.8,
		"required C5315 parallel speedup (sequential ns/op over Parallelism=NumCPU); enforced on hosts with >= 4 CPUs")
	flag.Parse()
	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchperf: need -out and/or -baseline")
		os.Exit(2)
	}

	snap, err := collect()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := writeSnapshot(*out, snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchperf: wrote %s (%d benchmarks, %d wire evals)\n",
			*out, len(snap.Benchmarks), snap.WireCostEvaluations)
	}
	if *baseline != "" {
		base, err := readSnapshot(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
			os.Exit(1)
		}
		errs := compare(base, snap, *tol, *timeTol, *minNs)
		// The speedup gate reads the fresh run, not the baseline: it is
		// an absolute floor for the wave-parallel mapper, only meaningful
		// on hosts wide enough that 1.8x is reachable (a 2-CPU runner
		// tops out below it on Amdahl grounds alone).
		if runtime.NumCPU() >= 4 && snap.ParallelSpeedup > 0 && snap.ParallelSpeedup < *minSpeedup {
			errs = append(errs, fmt.Sprintf(
				"C5315 parallel speedup %.2fx < %.2fx floor at NumCPU=%d",
				snap.ParallelSpeedup, *minSpeedup, runtime.NumCPU()))
		}
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchperf: REGRESSION: %s\n", e)
			}
			os.Exit(1)
		}
		fmt.Printf("benchperf: OK against %s (%d benchmarks within tolerance)\n",
			*baseline, len(base.Benchmarks))
	}
}

// collect runs every target benchmark plus the in-process wire-eval
// probe and assembles the snapshot.
func collect() (*snapshot, error) {
	snap := &snapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]result),
	}
	for _, t := range targets {
		if err := runBench(t, snap.Benchmarks); err != nil {
			return nil, err
		}
	}
	snap.WireCostEvaluationsByTarget = make(map[string]uint64, 3)
	var cones uint64
	for _, tgt := range []lily.TechnologyTarget{lily.TargetASIC, lily.TargetLUT4, lily.TargetLUT6} {
		evals, c, err := wireEvals(tgt)
		if err != nil {
			return nil, err
		}
		snap.WireCostEvaluationsByTarget[tgt.String()] = evals
		if tgt == lily.TargetASIC {
			snap.WireCostEvaluations = evals
			cones = c
		}
	}
	snap.ConesMapped = cones
	snap.GatesPerSecond = make(map[string]float64, len(gpsProfiles))
	for _, name := range gpsProfiles {
		gps, err := scaleThroughput(name)
		if err != nil {
			return nil, err
		}
		fmt.Printf("benchperf: %s: %.0f gates/s\n", name, gps)
		snap.GatesPerSecond[name] = gps
	}
	snap.NumCPU = runtime.NumCPU()
	seq, par := snap.Benchmarks["PipelineC5315"], snap.Benchmarks["PipelineC5315Parallel"]
	if seq.NsPerOp > 0 && par.NsPerOp > 0 {
		snap.ParallelSpeedup = seq.NsPerOp / par.NsPerOp
	}
	return snap, nil
}

// runBench shells out to `go test -bench` with a single timed iteration
// and -benchmem, parsing every result line into out.
func runBench(t benchTarget, out map[string]result) error {
	args := []string{"test", "-run", "^$", "-bench", t.Pattern, "-benchtime", "1x", "-benchmem", t.Pkg}
	fmt.Printf("benchperf: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench %s %s: %w", t.Pattern, t.Pkg, err)
	}
	found := 0
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		out[name] = r
		found++
	}
	if found == 0 {
		return fmt.Errorf("no benchmark lines in output of -bench %s %s", t.Pattern, t.Pkg)
	}
	return nil
}

// workerSub normalizes GOMAXPROCS-dependent sub-benchmark names
// (BenchmarkEngineSuite/workers-8) so snapshots recorded on different
// machines stay comparable.
var workerSub = regexp.MustCompile(`/workers-\d+`)

// parseBenchLine extracts one `Benchmark... N X ns/op ... Y B/op Z
// allocs/op` line. The leading "Benchmark" and the trailing
// -GOMAXPROCS suffix are stripped from the key.
func parseBenchLine(line string) (string, result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = workerSub.ReplaceAllString(name, "/workers-max")
	var r result
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return name, r, seen
}

// wireEvals maps the fixed circuit sample in-process at one technology
// target with a registered flow-metrics bundle and reads back the
// counters the mapper bumps.
func wireEvals(tgt lily.TechnologyTarget) (evals, cones uint64, err error) {
	reg := obs.NewRegistry()
	fm := obs.RegisterFlowMetrics(reg)
	ctx := obs.ContextWithFlowMetrics(context.Background(), fm)
	for _, name := range wireEvalCircuits {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			return 0, 0, err
		}
		if _, err := lily.RunFlowContext(ctx, c, lily.FlowOptions{Mapper: lily.MapperLily, Target: tgt}); err != nil {
			return 0, 0, fmt.Errorf("wire-eval probe on %s@%s: %w", name, tgt, err)
		}
	}
	return fm.WireEvals.Value(), fm.ConesMapped.Value(), nil
}

// scaleThroughput runs the complete pipeline once on a scale profile and
// returns generated nodes per wall-clock second.
func scaleThroughput(name string) (float64, error) {
	c, err := lily.GenerateBenchmark(name)
	if err != nil {
		return 0, err
	}
	nodes := c.Stats().Nodes
	start := time.Now()
	if _, err := lily.RunFlow(c, lily.FlowOptions{
		Mapper:      lily.MapperLily,
		Objective:   lily.ObjectiveArea,
		Parallelism: runtime.NumCPU(),
	}); err != nil {
		return 0, fmt.Errorf("throughput probe on %s: %w", name, err)
	}
	return float64(nodes) / time.Since(start).Seconds(), nil
}

// compare returns one message per metric in base that regressed beyond
// its tolerance in cur. Missing benchmarks are regressions too: a gate
// that silently drops its slowest case is not a gate.
func compare(base, cur *snapshot, tol, timeTol, minNs float64) []string {
	var errs []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var baseNs, curNs float64
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: present in baseline, missing from this run", name))
			continue
		}
		baseNs += b.NsPerOp
		curNs += c.NsPerOp
		if msg := exceeds(name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, tol); msg != "" {
			errs = append(errs, msg)
		}
		if b.NsPerOp >= minNs {
			if msg := exceeds(name, "ns/op", b.NsPerOp, c.NsPerOp, timeTol); msg != "" {
				errs = append(errs, msg)
			}
		}
	}
	if msg := exceeds("suite aggregate", "total ns", baseNs, curNs, timeTol); msg != "" {
		errs = append(errs, msg)
	}
	if msg := exceeds("wire-eval probe", "wire_cost_evaluations",
		float64(base.WireCostEvaluations), float64(cur.WireCostEvaluations), tol); msg != "" {
		errs = append(errs, msg)
	}
	tgts := make([]string, 0, len(base.WireCostEvaluationsByTarget))
	for t := range base.WireCostEvaluationsByTarget {
		tgts = append(tgts, t)
	}
	sort.Strings(tgts)
	for _, t := range tgts {
		b := base.WireCostEvaluationsByTarget[t]
		c, ok := cur.WireCostEvaluationsByTarget[t]
		if !ok {
			errs = append(errs, fmt.Sprintf("wire-eval probe @%s: present in baseline, missing from this run", t))
			continue
		}
		if msg := exceeds("wire-eval probe @"+t, "wire_cost_evaluations",
			float64(b), float64(c), tol); msg != "" {
			errs = append(errs, msg)
		}
	}
	profs := make([]string, 0, len(base.GatesPerSecond))
	for p := range base.GatesPerSecond {
		profs = append(profs, p)
	}
	sort.Strings(profs)
	for _, p := range profs {
		b := base.GatesPerSecond[p]
		c, ok := cur.GatesPerSecond[p]
		if !ok {
			errs = append(errs, fmt.Sprintf("scale throughput %s: present in baseline, missing from this run", p))
			continue
		}
		// Throughput regresses downward, so the gate inverts: failing
		// means cur fell below base/(1+timeTol).
		if b > 0 && c < b/(1+timeTol) {
			errs = append(errs, fmt.Sprintf("scale throughput %s: %.0f -> %.0f gates/s (%.1f%%, tolerance -%.0f%%)",
				p, b, c, 100*(c/b-1), 100*timeTol/(1+timeTol)))
		}
	}
	return errs
}

// exceeds formats a regression message when cur > base·(1+tol);
// improvements and zero baselines never fail.
func exceeds(name, metric string, base, cur, tol float64) string {
	if base <= 0 || cur <= base*(1+tol) {
		return ""
	}
	return fmt.Sprintf("%s %s: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
		name, metric, base, cur, 100*(cur/base-1), 100*tol)
}

func writeSnapshot(path string, s *snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &snapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
