# Lily build/test/lint entry points. Everything is stdlib-only Go; the
# lint target builds the project's own analysis suite (cmd/lilylint,
# DESIGN.md §9) and runs it through the go vet driver.

GO ?= go
BIN ?= bin

.PHONY: all build test lint lint-selfcheck race soak smoke cluster-smoke scale-smoke bench perf perfcheck cover fuzz fmt clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-sensitive packages (engine, cluster,
# server, the top-level flow API) without paying for -race on the whole
# suite.
race:
	$(GO) test -race ./internal/engine/ ./internal/cluster/ ./internal/server/ .

# Job-lifecycle soak: registry-bound + eviction tests under -race,
# repeated to surface scheduling-order flakes (see DESIGN.md §8).
soak:
	$(GO) test -race -count=5 -run 'Soak|Retain|Evict|LoadShed|QueueFull|Follower' \
		./internal/engine/ ./internal/server/

# Observability smoke test: boots lilyd, runs a job, validates the
# /metrics exposition and the job's phase trace (DESIGN.md §10).
smoke:
	./scripts/obs-smoke.sh

# Cluster smoke test (DESIGN.md §12): three in-process nodes serve the
# benchmark suite through the batch API; every mapped-BLIF SHA-256 must
# match testdata/golden.json no matter which node or cache tier served
# it, and a killed owner must degrade to local compute with the spill
# visible in the survivor's counters. The cluster unit suites run under
# -race first.
cluster-smoke:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestThreeNode|TestCachePeek|TestClusterJob|TestBatch' ./internal/server/
	$(GO) test -race -run TestClusterSmoke .

# Frontier-scale smoke (ROADMAP "production scale"): the seeded
# 100k-gate generated circuit through the complete pipeline twice, each
# run under a 60-second wall-clock budget, the two mapped-BLIF outputs
# byte-identical. Deliberately without -race — the budget measures the
# pipeline, not the detector.
scale-smoke:
	LILY_SCALE_PROFILE=gen100k LILY_SCALE_BUDGET_S=60 \
		$(GO) test -run TestScaleSmoke -v -timeout 600s -count=1 .

# Single-iteration pass over the engine + obs benchmarks so they keep
# compiling and running (BenchmarkDisabledTracer reports allocs/op).
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineSuite -benchtime=1x ./internal/engine/
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/obs/

# Performance snapshot: run the hot-path benchmarks (full Table 1, the
# C5315 pipeline, the engine suite) once each plus the in-process
# wire-cost-evaluation probe, and write BENCH_PR5.json at the repo root
# (DESIGN.md §11). Commit the refreshed file when a PR intentionally
# changes performance.
perf:
	$(GO) run ./scripts/benchperf -out BENCH_PR5.json

# Regression gate against the committed snapshot: deterministic metrics
# (allocs/op, wire-cost evaluations) may not regress more than 10%;
# ns/op not more than 50%, checked per benchmark above a 0.5s floor and
# in aggregate over the whole suite (slack for machine variance). CI
# runs this on every push.
perfcheck:
	$(GO) run ./scripts/benchperf -baseline BENCH_PR5.json

# The fifteen mapping packages (front end through verification) plus the
# cluster tier and the lint suite itself must stay at or above 70%
# statement coverage. The remaining pure-infrastructure packages
# (engine, server, obs) are covered by their own suites and the
# race/soak targets, so they are deliberately outside this floor.
COVER_PKGS := ./internal/logic/ ./internal/decomp/ ./internal/library/ \
	./internal/match/ ./internal/cut/ ./internal/cover/ ./internal/mis/ ./internal/core/ \
	./internal/place/ ./internal/wire/ ./internal/geom/ ./internal/netlist/ \
	./internal/layout/ ./internal/timing/ ./internal/fanout/ ./internal/equiv/ \
	./internal/cluster/ ./internal/lint/
COVER_FLOOR := 70.0

comma := ,
empty :=
space := $(empty) $(empty)
COVER_PKG_CSV := $(subst $(space),$(comma),$(strip $(COVER_PKGS)))

cover:
	@mkdir -p $(BIN)
	$(GO) test -coverprofile=$(BIN)/cover.out \
		-coverpkg='$(COVER_PKG_CSV)' $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=$(BIN)/cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

# Short fuzz smoke over the parser and cover-algebra targets; the seed
# corpus under internal/logic/testdata/fuzz always replays in plain
# `go test`, this target additionally explores for a few seconds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseBLIF -fuzztime 10s ./internal/logic/
	$(GO) test -run '^$$' -fuzz FuzzSOP -fuzztime 10s ./internal/logic/

$(BIN)/lilylint: FORCE
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lilylint ./cmd/lilylint

FORCE:

lint: $(BIN)/lilylint
	$(GO) vet -vettool=$(abspath $(BIN)/lilylint) ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Standalone selfcheck: the offline loader drives the same analyzer set
# (per-package + the cross-package purity/goleak/httpcontract suite)
# over the whole module without going through the go vet driver, so a
# vet-protocol regression cannot mask a finding. CI gates on both.
lint-selfcheck: $(BIN)/lilylint
	$(BIN)/lilylint ./...

fmt:
	gofmt -w .

clean:
	rm -rf $(BIN)
