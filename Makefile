# Lily build/test/lint entry points. Everything is stdlib-only Go; the
# lint target builds the project's own analysis suite (cmd/lilylint,
# DESIGN.md §9) and runs it through the go vet driver.

GO ?= go
BIN ?= bin

.PHONY: all build test lint race soak smoke bench fmt clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-sensitive packages (engine, server, the
# top-level flow API) without paying for -race on the whole suite.
race:
	$(GO) test -race ./internal/engine/ ./internal/server/ .

# Job-lifecycle soak: registry-bound + eviction tests under -race,
# repeated to surface scheduling-order flakes (see DESIGN.md §8).
soak:
	$(GO) test -race -count=5 -run 'Soak|Retain|Evict|LoadShed|QueueFull|Follower' \
		./internal/engine/ ./internal/server/

# Observability smoke test: boots lilyd, runs a job, validates the
# /metrics exposition and the job's phase trace (DESIGN.md §10).
smoke:
	./scripts/obs-smoke.sh

# Single-iteration pass over the engine + obs benchmarks so they keep
# compiling and running (BenchmarkDisabledTracer reports allocs/op).
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineSuite -benchtime=1x ./internal/engine/
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/obs/

$(BIN)/lilylint: FORCE
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lilylint ./cmd/lilylint

FORCE:

lint: $(BIN)/lilylint
	$(GO) vet -vettool=$(abspath $(BIN)/lilylint) ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

fmt:
	gofmt -w .

clean:
	rm -rf $(BIN)
