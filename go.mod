module lily

go 1.22
