package lily

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 15 {
		t.Fatalf("%d benchmarks, want 15", len(names))
	}
	for _, n := range names {
		c, err := GenerateBenchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if c.Name() != n {
			t.Errorf("name %s != %s", c.Name(), n)
		}
	}
	if _, err := GenerateBenchmark("nope"); err == nil {
		t.Error("bogus benchmark accepted")
	}
}

func TestBLIFRoundTripThroughFacade(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]bool{}
	for i, name := range c.InputNames() {
		in[name] = i%2 == 0
	}
	o1, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c2.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := range o1 {
		if o1[k] != o2[k] {
			t.Fatalf("output %s differs after BLIF round trip", k)
		}
	}
}

func TestRunFlowBothMappersVerified(t *testing.T) {
	c, err := GenerateBenchmark("b9")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mapper{MapperMIS, MapperLily} {
		for _, o := range []Objective{ObjectiveArea, ObjectiveDelay} {
			res, err := RunFlow(c, FlowOptions{Mapper: m, Objective: o, VerifyEquivalence: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, o, err)
			}
			if res.Gates == 0 || res.ChipAreaMM2 <= 0 || res.WirelengthMM <= 0 || res.DelayNS <= 0 {
				t.Errorf("%v/%v: degenerate result %+v", m, o, res)
			}
			if res.ChipAreaMM2 <= res.ActiveAreaMM2 {
				t.Errorf("%v/%v: chip area below active area", m, o)
			}
		}
	}
}

func TestHeadlineShapeAggregate(t *testing.T) {
	// The paper's headline: over the suite, Lily's final chip area and
	// interconnect length beat MIS 2.1's. Individual circuits are noisy
	// (the paper's misex1 row is a counterexample in its own Table 1), so
	// assert the aggregate over a three-circuit sample.
	if testing.Short() {
		t.Skip("full flows are slow")
	}
	var misChip, misWL, lilyChip, lilyWL float64
	for _, name := range []string{"duke2", "e64", "apex7"} {
		c, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunFlow(c, FlowOptions{Mapper: MapperMIS})
		if err != nil {
			t.Fatal(err)
		}
		l, err := RunFlow(c, FlowOptions{Mapper: MapperLily})
		if err != nil {
			t.Fatal(err)
		}
		misChip += m.ChipAreaMM2
		misWL += m.WirelengthMM
		lilyChip += l.ChipAreaMM2
		lilyWL += l.WirelengthMM
	}
	if lilyChip >= misChip {
		t.Errorf("Lily chip area %.3f not below MIS %.3f", lilyChip, misChip)
	}
	if lilyWL >= misWL {
		t.Errorf("Lily wirelength %.2f not below MIS %.2f", lilyWL, misWL)
	}
}

func TestTinyVsBigLibrary(t *testing.T) {
	// §5: the tiny library yields many more gates; the big library has
	// smaller active cell area.
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := RunFlow(c, FlowOptions{Mapper: MapperMIS, Library: LibraryTiny})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunFlow(c, FlowOptions{Mapper: MapperMIS, Library: LibraryBig})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Gates <= big.Gates {
		t.Errorf("tiny library gates %d <= big %d", tiny.Gates, big.Gates)
	}
	if tiny.ActiveAreaMM2 <= big.ActiveAreaMM2 {
		t.Errorf("tiny active area %.3f <= big %.3f", tiny.ActiveAreaMM2, big.ActiveAreaMM2)
	}
}

func TestFlowOptionVariants(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	variants := []FlowOptions{
		{Mapper: MapperLily, Update: UpdateCMOfMerged},
		{Mapper: MapperLily, Update: UpdateMedianFans},
		{Mapper: MapperLily, Estimator: WireSpanningTree},
		{Mapper: MapperLily, DisableConeOrdering: true},
		{Mapper: MapperLily, WireWeight: 0.25},
		{Mapper: MapperLily, LayoutDrivenDecomposition: true},
		{Mapper: MapperMIS, TreeMode: true},
	}
	for i, opt := range variants {
		opt.VerifyEquivalence = true
		if _, err := RunFlow(c, opt); err != nil {
			t.Errorf("variant %d: %v", i, err)
		}
	}
}

func TestLilyStatsReported(t *testing.T) {
	c, err := GenerateBenchmark("b9")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFlow(c, FlowOptions{Mapper: MapperLily})
	if err != nil {
		t.Fatal(err)
	}
	if res.LilyConesProcessed != c.Stats().POs {
		t.Errorf("cones %d != POs %d", res.LilyConesProcessed, c.Stats().POs)
	}
	if res.SubjectNodes == 0 {
		t.Error("subject size missing")
	}
	if len(res.CriticalPath) < 2 {
		t.Error("critical path missing")
	}
	if !strings.Contains(res.String(), "b9") {
		t.Error("String() misses circuit name")
	}
}

func TestLoadBLIFErrors(t *testing.T) {
	if _, err := LoadBLIF(strings.NewReader(".model x\n.latch a b\n.end")); err == nil {
		t.Error("latch accepted")
	}
}

func TestFanoutOptimizeFlow(t *testing.T) {
	c, err := GenerateBenchmark("C880")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunFlow(c, FlowOptions{Mapper: MapperLily, Objective: ObjectiveDelay})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := RunFlow(c, FlowOptions{
		Mapper: MapperLily, Objective: ObjectiveDelay,
		FanoutOptimize: true, VerifyEquivalence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if buffered.BuffersInserted == 0 {
		t.Skip("no high-fanout nets on this circuit; nothing to assert")
	}
	if buffered.Gates <= plain.Gates {
		t.Errorf("buffering did not add cells: %d vs %d", buffered.Gates, plain.Gates)
	}
}

func TestPreOptimizeFlow(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := c.Stats().Nodes
	res, err := RunFlow(c, FlowOptions{
		Mapper: MapperLily, PreOptimize: true, VerifyEquivalence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates == 0 {
		t.Error("empty result")
	}
	// The caller's circuit must be untouched by the optimizing copy.
	if c.Stats().Nodes != nodesBefore {
		t.Error("PreOptimize mutated the caller's circuit")
	}
}

func TestSlackInFlow(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunFlow(c, FlowOptions{Mapper: MapperMIS, Objective: ObjectiveDelay,
		ClockPeriodNS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ViolatingCells != 0 || r1.WorstSlackNS <= 0 {
		t.Errorf("loose period: slack=%v violations=%d", r1.WorstSlackNS, r1.ViolatingCells)
	}
	r2, err := RunFlow(c, FlowOptions{Mapper: MapperMIS, Objective: ObjectiveDelay,
		ClockPeriodNS: r1.DelayNS / 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.ViolatingCells == 0 || r2.WorstSlackNS >= 0 {
		t.Errorf("tight period: slack=%v violations=%d", r2.WorstSlackNS, r2.ViolatingCells)
	}
}

func TestAnnealPlacementFlow(t *testing.T) {
	c, err := GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFlow(c, FlowOptions{Mapper: MapperMIS, AnnealPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WirelengthMM <= 0 {
		t.Error("degenerate annealed flow")
	}
}
