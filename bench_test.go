package lily

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5) as testing.B benchmarks. Each benchmark times one full
// pipeline run and reports the paper's quantities as custom metrics, so
//
//	go test -bench 'Table1' -benchtime 1x
//
// prints one row per circuit with instance area, chip area, and
// wirelength for both mappers (compare cmd/tables for the formatted view).
// Ablation benchmarks cover the design choices DESIGN.md lists: placement
// update rule, wire estimator, cone ordering, λ, and library size.

import (
	"math"
	"runtime"
	"testing"
)

// table1Sample keeps default `go test -bench=.` runs tractable; passing
// -bench 'Table1Full' exercises every circuit including C5315 and apex3.
var table1Sample = []string{"9symml", "C432", "C880", "apex7", "duke2", "e64", "misex1"}

func runPair(b *testing.B, circuit string, objective Objective) (mis, lily *FlowResult) {
	b.Helper()
	c, err := GenerateBenchmark(circuit)
	if err != nil {
		b.Fatal(err)
	}
	mis, err = RunFlow(c, FlowOptions{Mapper: MapperMIS, Objective: objective})
	if err != nil {
		b.Fatal(err)
	}
	lily, err = RunFlow(c, FlowOptions{Mapper: MapperLily, Objective: objective})
	if err != nil {
		b.Fatal(err)
	}
	return mis, lily
}

// BenchmarkTable1 regenerates Table 1 (area mode) rows over a sample of
// the suite.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Sample {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, l := runPair(b, name, ObjectiveArea)
				b.ReportMetric(m.ChipAreaMM2, "mis-chip-mm2")
				b.ReportMetric(l.ChipAreaMM2, "lily-chip-mm2")
				b.ReportMetric(m.WirelengthMM, "mis-wl-mm")
				b.ReportMetric(l.WirelengthMM, "lily-wl-mm")
				b.ReportMetric(l.ChipAreaMM2/m.ChipAreaMM2, "chip-ratio")
				b.ReportMetric(l.WirelengthMM/m.WirelengthMM, "wl-ratio")
			}
		})
	}
}

// BenchmarkTable1Full runs every Table 1 circuit (slow; includes C5315).
func BenchmarkTable1Full(b *testing.B) {
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, l := runPair(b, name, ObjectiveArea)
				b.ReportMetric(l.ChipAreaMM2/m.ChipAreaMM2, "chip-ratio")
				b.ReportMetric(l.WirelengthMM/m.WirelengthMM, "wl-ratio")
				b.ReportMetric(l.ActiveAreaMM2/m.ActiveAreaMM2, "inst-ratio")
			}
		})
	}
}

// BenchmarkTable2 regenerates Table 2 (timing mode) rows.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"9symml", "C432", "C880", "apex7", "b9", "duke2", "misex1"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, l := runPair(b, name, ObjectiveDelay)
				b.ReportMetric(m.DelayNS, "mis-delay-ns")
				b.ReportMetric(l.DelayNS, "lily-delay-ns")
				b.ReportMetric(l.DelayNS/m.DelayNS, "delay-ratio")
			}
		})
	}
}

// BenchmarkTable2Full runs every Table 2 circuit (slow).
func BenchmarkTable2Full(b *testing.B) {
	for _, name := range Table2Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, l := runPair(b, name, ObjectiveDelay)
				b.ReportMetric(l.DelayNS/m.DelayNS, "delay-ratio")
			}
		})
	}
}

// BenchmarkFig11Distribution quantifies Figure 1.1(a): the wire cost of
// one big gate versus k distribution points for spread-out sources (see
// examples/distribution for the narrative version).
func BenchmarkFig11Distribution(b *testing.B) {
	type pt struct{ x, y float64 }
	sources := []pt{
		{0, 0}, {10, 20}, {20, 10},
		{0, 500}, {10, 480}, {20, 490},
	}
	sink := pt{500, 250}
	cost := func(k int) float64 {
		per := (len(sources) + k - 1) / k
		total := 0.0
		var gs []pt
		for i := 0; i < len(sources); i += per {
			end := i + per
			if end > len(sources) {
				end = len(sources)
			}
			var g pt
			for _, s := range sources[i:end] {
				g.x += s.x
				g.y += s.y
			}
			g.x /= float64(end - i)
			g.y /= float64(end - i)
			for _, s := range sources[i:end] {
				total += math.Abs(s.x-g.x) + math.Abs(s.y-g.y)
			}
			gs = append(gs, g)
		}
		var hub pt
		for _, g := range gs {
			hub.x += g.x
			hub.y += g.y
		}
		hub.x /= float64(len(gs))
		hub.y /= float64(len(gs))
		if len(gs) > 1 {
			for _, g := range gs {
				total += math.Abs(g.x-hub.x) + math.Abs(g.y-hub.y)
			}
		}
		total += math.Abs(hub.x-sink.x) + math.Abs(hub.y-sink.y)
		return total
	}
	var k1, k2 float64
	for i := 0; i < b.N; i++ {
		k1, k2 = cost(1), cost(2)
	}
	b.ReportMetric(k1, "wire-k1-um")
	b.ReportMetric(k2, "wire-k2-um")
	b.ReportMetric(k2/k1, "k2-over-k1")
	if k2 >= k1 {
		b.Fatal("figure 1.1a shape broken: k=2 not better for spread sources")
	}
}

// BenchmarkFig11Decomposition quantifies Figure 1.1(b): Lily with
// layout-driven decomposition versus balanced decomposition.
func BenchmarkFig11Decomposition(b *testing.B) {
	c, err := GenerateBenchmark("e64")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		bal, err := RunFlow(c, FlowOptions{Mapper: MapperLily})
		if err != nil {
			b.Fatal(err)
		}
		placed, err := RunFlow(c, FlowOptions{Mapper: MapperLily, LayoutDrivenDecomposition: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bal.WirelengthMM, "balanced-wl-mm")
		b.ReportMetric(placed.WirelengthMM, "placed-wl-mm")
		b.ReportMetric(placed.WirelengthMM/bal.WirelengthMM, "wl-ratio")
	}
}

// BenchmarkPipelineC5315 measures the full Lily pipeline on the paper's
// runtime example (§5: C5315, 1892-gate inchoate network, ~10 min on a
// DEC3100).
func BenchmarkPipelineC5315(b *testing.B) {
	c, err := GenerateBenchmark("C5315")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(c, FlowOptions{Mapper: MapperLily})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SubjectNodes), "inchoate-nodes")
		b.ReportMetric(float64(res.Gates), "mapped-gates")
	}
}

// BenchmarkPipelineC5315Parallel is the same pipeline with the intra-job
// worker pool at NumCPU (DESIGN.md §13). Its ratio against the
// sequential run is the parallel-speedup series scripts/benchperf
// tracks; the output is bit-identical (TestMappedBLIFGOMAXPROCSInvariant
// sweeps the knob), so only the wall clock may differ.
func BenchmarkPipelineC5315Parallel(b *testing.B) {
	c, err := GenerateBenchmark("C5315")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(c, FlowOptions{Mapper: MapperLily, Parallelism: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SubjectNodes), "inchoate-nodes")
		b.ReportMetric(float64(res.Gates), "mapped-gates")
	}
}

// BenchmarkPipelineC5315LUT4 and ...LUT6 measure the same pipeline on
// the K-LUT backend: cut enumeration replaces library matching inside
// the identical covering DP, so the ASIC/LUT ns-per-op ratio tracks the
// relative cost of the two Backend implementations.
func BenchmarkPipelineC5315LUT4(b *testing.B) { benchPipelineLUT(b, TargetLUT4) }

func BenchmarkPipelineC5315LUT6(b *testing.B) { benchPipelineLUT(b, TargetLUT6) }

func benchPipelineLUT(b *testing.B, tgt TechnologyTarget) {
	b.Helper()
	c, err := GenerateBenchmark("C5315")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(c, FlowOptions{Mapper: MapperLily, Target: tgt})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SubjectNodes), "inchoate-nodes")
		b.ReportMetric(float64(res.Gates), "mapped-luts")
	}
}

// Ablation benchmarks (DESIGN.md §5).

func benchAblation(b *testing.B, circuits []string, opts map[string]FlowOptions) {
	for label, opt := range opts {
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var chip, wl float64
				for _, name := range circuits {
					c, err := GenerateBenchmark(name)
					if err != nil {
						b.Fatal(err)
					}
					r, err := RunFlow(c, opt)
					if err != nil {
						b.Fatal(err)
					}
					chip += r.ChipAreaMM2
					wl += r.WirelengthMM
				}
				b.ReportMetric(chip, "chip-mm2")
				b.ReportMetric(wl, "wl-mm")
			}
		})
	}
}

var ablationCircuits = []string{"C432", "duke2", "e64"}

// BenchmarkAblationCM compares the CM-of-Merged and CM-of-Fans placement
// update options plus the Manhattan-median variant (§3.2).
func BenchmarkAblationCM(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"cm-of-fans":   {Mapper: MapperLily, Update: UpdateCMOfFans},
		"cm-of-merged": {Mapper: MapperLily, Update: UpdateCMOfMerged},
		"median-fans":  {Mapper: MapperLily, Update: UpdateMedianFans},
	})
}

// BenchmarkAblationWireModel compares the §3.4 net-length estimators.
func BenchmarkAblationWireModel(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"hpwl-steiner":  {Mapper: MapperLily, Estimator: WireHPWLSteiner},
		"spanning-tree": {Mapper: MapperLily, Estimator: WireSpanningTree},
	})
}

// BenchmarkAblationConeOrder toggles the §3.5 cone ordering.
func BenchmarkAblationConeOrder(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"ordered": {Mapper: MapperLily},
		"natural": {Mapper: MapperLily, DisableConeOrdering: true},
	})
}

// BenchmarkAblationLambda sweeps the wire-cost weight (§5).
func BenchmarkAblationLambda(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"lambda-0.25": {Mapper: MapperLily, WireWeight: 0.25},
		"lambda-1":    {Mapper: MapperLily, WireWeight: 1},
		"lambda-4":    {Mapper: MapperLily, WireWeight: 4},
	})
}

// BenchmarkAblationPads compares connectivity-driven pad assignment with a
// naive uniform spread (§5: pad placement bounds Lily's wire reduction).
func BenchmarkAblationPads(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"connectivity-pads": {Mapper: MapperLily},
		"naive-pads":        {Mapper: MapperLily, NaivePads: true},
	})
}

// BenchmarkAblationReplace toggles the §3.2 periodic re-placement of the
// partially mapped network.
func BenchmarkAblationReplace(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"no-replace":  {Mapper: MapperLily},
		"replace-10":  {Mapper: MapperLily, ReplaceEvery: 10},
		"fresh-place": {Mapper: MapperLily, RePlaceMapped: true},
	})
}

// BenchmarkAblationFanout measures the buffer-tree postprocessing pass
// (paper §5 future work) on the delay objective.
func BenchmarkAblationFanout(b *testing.B) {
	for label, opt := range map[string]FlowOptions{
		"no-buffers":   {Mapper: MapperLily, Objective: ObjectiveDelay},
		"with-buffers": {Mapper: MapperLily, Objective: ObjectiveDelay, FanoutOptimize: true},
	} {
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var delay float64
				for _, name := range ablationCircuits {
					c, err := GenerateBenchmark(name)
					if err != nil {
						b.Fatal(err)
					}
					r, err := RunFlow(c, opt)
					if err != nil {
						b.Fatal(err)
					}
					delay += r.DelayNS
				}
				b.ReportMetric(delay, "sum-delay-ns")
			}
		})
	}
}

// BenchmarkAblationAnneal compares the greedy detailed placer against the
// simulated-annealing refinement (TimberWolf-style backend).
func BenchmarkAblationAnneal(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"greedy": {Mapper: MapperLily},
		"anneal": {Mapper: MapperLily, AnnealPlacement: true},
	})
}

// BenchmarkAblationPreOptimize measures the technology-independent
// optimization front end feeding both mappers.
func BenchmarkAblationPreOptimize(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"raw":       {Mapper: MapperLily},
		"optimized": {Mapper: MapperLily, PreOptimize: true},
	})
}

// BenchmarkAblationLibrary compares tiny and big libraries under both
// mappers (§5: Lily's edge grows with gate size).
func BenchmarkAblationLibrary(b *testing.B) {
	benchAblation(b, ablationCircuits, map[string]FlowOptions{
		"mis-tiny":  {Mapper: MapperMIS, Library: LibraryTiny},
		"mis-big":   {Mapper: MapperMIS, Library: LibraryBig},
		"lily-tiny": {Mapper: MapperLily, Library: LibraryTiny},
		"lily-big":  {Mapper: MapperLily, Library: LibraryBig},
	})
}
