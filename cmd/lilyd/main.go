// Command lilyd serves the lily mapping pipeline over HTTP: submit a job
// (benchmark name or uploaded BLIF plus flow options), poll its status,
// fetch the FlowResult, and download the layout SVG. Jobs execute on the
// concurrent flow engine (worker pool, per-job timeouts, content-addressed
// result cache, singleflight dedup); SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight jobs.
//
// Usage:
//
//	lilyd -addr :8080 -workers 8 -cache 256 -timeout 5m
//
// Example session:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"benchmark":"C432","svg":true,"options":{"mapper":"lily","objective":"area"}}'
//	curl -s 'localhost:8080/v1/jobs/job-000001?wait=10s'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/jobs/job-000001/svg -o C432.svg
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lily/internal/engine"
	"lily/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	queue := flag.Int("queue", 0, "submit-queue depth (0 = 4x workers)")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	eng := engine.New(engine.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(eng),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lilyd: listening on %s (workers=%d cache=%d timeout=%v)",
		*addr, *workers, *cache, *timeout)

	select {
	case err := <-errc:
		log.Fatalf("lilyd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("lilyd: shutting down, draining in-flight jobs (budget %v)", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lilyd: http shutdown: %v", err)
	}
	if err := eng.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("lilyd: engine shutdown: %v", err)
	}
	log.Printf("lilyd: bye")
}
