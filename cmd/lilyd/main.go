// Command lilyd serves the lily mapping pipeline over HTTP: submit a job
// (benchmark name or uploaded BLIF plus flow options), poll its status,
// fetch the FlowResult, and download the layout SVG. Jobs execute on the
// concurrent flow engine (worker pool, per-job timeouts, content-addressed
// result cache, singleflight dedup); SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight jobs.
//
// The daemon is built for sustained job streams: terminal jobs are
// retained boundedly (-max-jobs, oldest evicted first) and aged out
// (-retain); evicted IDs answer 410 Gone. A full submit queue sheds load
// with 429 Too Many Requests + Retry-After instead of hanging the
// connection, and the listener enforces header/idle timeouts against
// slow clients.
//
// Observability: GET /metrics serves Prometheus text exposition for the
// engine, flow, and HTTP layers; GET /v1/jobs/{id}/trace returns the
// job's phase-span tree (tracing is on by default, -trace=false disables
// it); -debug-addr starts a second, private listener exposing
// net/http/pprof. Logs are structured (log/slog); -log-format selects
// text or json.
//
// Cluster mode: -node-id names this node and -peers lists the other
// members (id=url pairs). N lilyd processes launched with the same
// membership become one logical service: each request's content digest
// has a single owner under rendezvous hashing, non-owners peek the
// owner's cache (GET /v1/cache/{digest}) or proxy the compute to it, and
// an owner that is down or shedding spills the request down the HRW
// order — local compute is always the final fallback. Results are
// byte-identical no matter which node computes them, so the tiers are
// interchangeable.
//
// Usage:
//
//	lilyd -addr :8080 -workers 8 -cache 256 -timeout 5m -max-jobs 4096 -retain 1h
//
// Three-node localhost cluster:
//
//	lilyd -addr :8081 -node-id n1 -peers 'n2=http://localhost:8082,n3=http://localhost:8083'
//	lilyd -addr :8082 -node-id n2 -peers 'n1=http://localhost:8081,n3=http://localhost:8083'
//	lilyd -addr :8083 -node-id n3 -peers 'n1=http://localhost:8081,n2=http://localhost:8082'
//
// Example session:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"benchmark":"C432","svg":true,"options":{"mapper":"lily","objective":"area"}}'
//	curl -s 'localhost:8080/v1/jobs/job-000001?wait=10s'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/jobs/job-000001/trace
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lily"
	"lily/internal/cluster"
	"lily/internal/engine"
	"lily/internal/obs"
	"lily/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	parallelism := flag.Int("parallelism", 0,
		"intra-job worker default for jobs that don't set options.parallelism (0 = sequential; bit-identical output at any setting)")
	queue := flag.Int("queue", 0, "submit-queue capacity (0 = 4x workers)")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	maxJobs := flag.Int("max-jobs", 4096,
		"terminal jobs retained for status/result fetches; oldest evicted first (negative = unlimited)")
	retain := flag.Duration("retain", time.Hour,
		"drop terminal jobs older than this (0 = keep until evicted)")
	trace := flag.Bool("trace", true,
		"record per-job phase-span traces, served at /v1/jobs/{id}/trace")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logRequests := flag.Bool("log-requests", false, "log one record per HTTP request")
	debugAddr := flag.String("debug-addr", "",
		"separate listen address for net/http/pprof (empty = disabled)")
	nodeID := flag.String("node-id", "",
		"stable cluster node ID (required with -peers; standalone default \"solo\")")
	peersFlag := flag.String("peers", "",
		"comma-separated cluster peers as id=url pairs, e.g. 'n2=http://host2:8080,n3=http://host3:8080'")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "peer health-probe cadence")
	targetFlag := flag.String("target", "asic",
		"technology target for jobs that don't set options.target: asic, lut4, or lut6")
	mlThreshold := flag.Int("multilevel-threshold", 0,
		"placement V-cycle threshold for jobs that don't set options.multilevel_threshold (0 = library default 25000, negative disables)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lilyd: %v\n", err)
		os.Exit(2)
	}

	defaultTarget, err := lily.ParseTechnologyTarget(*targetFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lilyd: %v\n", err)
		os.Exit(2)
	}

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lilyd: %v\n", err)
		os.Exit(2)
	}
	if len(peers) > 0 && *nodeID == "" {
		fmt.Fprintln(os.Stderr, "lilyd: -peers requires -node-id")
		os.Exit(2)
	}

	// One registry across engine, flow, cluster, and HTTP layers: a
	// single /metrics scrape sees peer health next to queue depth.
	var clu *cluster.Cluster
	reg := obs.NewRegistry()
	if len(peers) > 0 {
		clu, err = cluster.New(cluster.Config{
			Self:          *nodeID,
			Peers:         peers,
			ProbeInterval: *probeEvery,
			Metrics:       reg,
			Logger:        logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lilyd: %v\n", err)
			os.Exit(2)
		}
	}

	engCfg := engine.Config{
		Workers:         *workers,
		Parallelism:     *parallelism,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		MaxRetainedJobs: *maxJobs,
		RetainFor:       *retain,
		Metrics:         reg,
		Trace:           *trace,
		// A network service must never park a connection on a full
		// queue; shed load and let the handler answer 429 + Retry-After.
		LoadShed: true,
		// One structured record per terminal job, from the worker that
		// finished it.
		OnTerminal: func(st engine.Status) {
			logger.Info("job done",
				slog.String("job_id", st.ID),
				slog.String("state", st.State),
				slog.String("benchmark", st.Benchmark),
				slog.Bool("cache_hit", st.CacheHit),
				slog.Bool("deduped", st.Deduped),
				slog.Duration("queue_wait", st.QueueWait),
				slog.Duration("run_time", st.RunTime),
			)
		},
	}
	if clu != nil {
		engCfg.Remote = clu.Remote
	}
	eng := engine.New(engCfg)

	srvOpts := []server.Option{server.WithDefaultTarget(defaultTarget)}
	if *mlThreshold != 0 {
		srvOpts = append(srvOpts, server.WithDefaultMultilevelThreshold(*mlThreshold))
	}
	if clu != nil {
		srvOpts = append(srvOpts, server.WithCluster(clu))
	} else if *nodeID != "" {
		srvOpts = append(srvOpts, server.WithNodeID(*nodeID))
	}
	handler := server.New(eng, srvOpts...)
	if *logRequests {
		handler.Logger = logger
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Defenses against slow or abusive clients: a peer may not dribble
		// headers forever, idle keep-alives are reaped, and headers are
		// size-capped. No WriteTimeout — the server-side ?wait clamp
		// already bounds long-polls, and SVG downloads may be large.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute, // full request incl. 8 MiB BLIF body
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		slog.String("addr", *addr),
		slog.Int("workers", *workers),
		slog.Int("queue_cap", eng.Stats().QueueCap),
		slog.Int("cache", *cache),
		slog.Duration("timeout", *timeout),
		slog.Int("max_jobs", *maxJobs),
		slog.Duration("retain", *retain),
		slog.Bool("trace", *trace),
	)
	if clu != nil {
		logger.Info("cluster mode",
			slog.String("node_id", clu.Self()),
			slog.Any("ring", clu.Nodes()),
		)
	}

	// pprof lives on its own listener so profiling endpoints are never
	// reachable through the public API address. Handlers are registered
	// explicitly on a private mux — importing net/http/pprof for its
	// DefaultServeMux side effect would leak them onto any handler that
	// falls through to the default mux.
	var dbg *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", slog.String("error", err.Error()))
			}
		}()
		logger.Info("pprof listening", slog.String("addr", *debugAddr))
	}

	select {
	case err := <-errc:
		logger.Error("serve", slog.String("error", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down, draining in-flight jobs", slog.Duration("budget", *drain))

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", slog.String("error", err.Error()))
	}
	if dbg != nil {
		if err := dbg.Shutdown(shutdownCtx); err != nil {
			logger.Warn("debug shutdown", slog.String("error", err.Error()))
		}
	}
	if err := eng.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("engine shutdown", slog.String("error", err.Error()))
	}
	if clu != nil {
		clu.Close()
	}
	logger.Info("bye")
}

// parsePeers parses the -peers flag: comma-separated id=url pairs. An
// empty string means standalone mode.
func parsePeers(s string) ([]cluster.Node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var nodes []cluster.Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		id, u = strings.TrimSpace(id), strings.TrimSpace(u)
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, err := url.ParseRequestURI(u); err != nil {
			return nil, fmt.Errorf("bad -peers URL for %s: %w", id, err)
		}
		nodes = append(nodes, cluster.Node{ID: id, URL: strings.TrimRight(u, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers set but no id=url pairs parsed from %q", s)
	}
	return nodes, nil
}

// newLogger builds the process logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want \"text\" or \"json\")", format)
	}
}
