// Command lilyd serves the lily mapping pipeline over HTTP: submit a job
// (benchmark name or uploaded BLIF plus flow options), poll its status,
// fetch the FlowResult, and download the layout SVG. Jobs execute on the
// concurrent flow engine (worker pool, per-job timeouts, content-addressed
// result cache, singleflight dedup); SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight jobs.
//
// The daemon is built for sustained job streams: terminal jobs are
// retained boundedly (-max-jobs, oldest evicted first) and aged out
// (-retain); evicted IDs answer 410 Gone. A full submit queue sheds load
// with 429 Too Many Requests + Retry-After instead of hanging the
// connection, and the listener enforces header/idle timeouts against
// slow clients.
//
// Usage:
//
//	lilyd -addr :8080 -workers 8 -cache 256 -timeout 5m -max-jobs 4096 -retain 1h
//
// Example session:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"benchmark":"C432","svg":true,"options":{"mapper":"lily","objective":"area"}}'
//	curl -s 'localhost:8080/v1/jobs/job-000001?wait=10s'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/jobs/job-000001/svg -o C432.svg
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lily/internal/engine"
	"lily/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	queue := flag.Int("queue", 0, "submit-queue capacity (0 = 4x workers)")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	maxJobs := flag.Int("max-jobs", 4096,
		"terminal jobs retained for status/result fetches; oldest evicted first (negative = unlimited)")
	retain := flag.Duration("retain", time.Hour,
		"drop terminal jobs older than this (0 = keep until evicted)")
	flag.Parse()

	eng := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		MaxRetainedJobs: *maxJobs,
		RetainFor:       *retain,
		// A network service must never park a connection on a full
		// queue; shed load and let the handler answer 429 + Retry-After.
		LoadShed: true,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(eng),
		// Defenses against slow or abusive clients: a peer may not dribble
		// headers forever, idle keep-alives are reaped, and headers are
		// size-capped. No WriteTimeout — the server-side ?wait clamp
		// already bounds long-polls, and SVG downloads may be large.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute, // full request incl. 8 MiB BLIF body
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lilyd: listening on %s (workers=%d queue_cap=%d cache=%d timeout=%v max_jobs=%d retain=%v)",
		*addr, *workers, eng.Stats().QueueCap, *cache, *timeout, *maxJobs, *retain)

	select {
	case err := <-errc:
		log.Fatalf("lilyd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("lilyd: shutting down, draining in-flight jobs (budget %v)", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lilyd: http shutdown: %v", err)
	}
	if err := eng.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("lilyd: engine shutdown: %v", err)
	}
	log.Printf("lilyd: bye")
}
