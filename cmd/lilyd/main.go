// Command lilyd serves the lily mapping pipeline over HTTP: submit a job
// (benchmark name or uploaded BLIF plus flow options), poll its status,
// fetch the FlowResult, and download the layout SVG. Jobs execute on the
// concurrent flow engine (worker pool, per-job timeouts, content-addressed
// result cache, singleflight dedup); SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight jobs.
//
// The daemon is built for sustained job streams: terminal jobs are
// retained boundedly (-max-jobs, oldest evicted first) and aged out
// (-retain); evicted IDs answer 410 Gone. A full submit queue sheds load
// with 429 Too Many Requests + Retry-After instead of hanging the
// connection, and the listener enforces header/idle timeouts against
// slow clients.
//
// Observability: GET /metrics serves Prometheus text exposition for the
// engine, flow, and HTTP layers; GET /v1/jobs/{id}/trace returns the
// job's phase-span tree (tracing is on by default, -trace=false disables
// it); -debug-addr starts a second, private listener exposing
// net/http/pprof. Logs are structured (log/slog); -log-format selects
// text or json.
//
// Usage:
//
//	lilyd -addr :8080 -workers 8 -cache 256 -timeout 5m -max-jobs 4096 -retain 1h
//
// Example session:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"benchmark":"C432","svg":true,"options":{"mapper":"lily","objective":"area"}}'
//	curl -s 'localhost:8080/v1/jobs/job-000001?wait=10s'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/v1/jobs/job-000001/trace
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lily/internal/engine"
	"lily/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	queue := flag.Int("queue", 0, "submit-queue capacity (0 = 4x workers)")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	maxJobs := flag.Int("max-jobs", 4096,
		"terminal jobs retained for status/result fetches; oldest evicted first (negative = unlimited)")
	retain := flag.Duration("retain", time.Hour,
		"drop terminal jobs older than this (0 = keep until evicted)")
	trace := flag.Bool("trace", true,
		"record per-job phase-span traces, served at /v1/jobs/{id}/trace")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logRequests := flag.Bool("log-requests", false, "log one record per HTTP request")
	debugAddr := flag.String("debug-addr", "",
		"separate listen address for net/http/pprof (empty = disabled)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lilyd: %v\n", err)
		os.Exit(2)
	}

	eng := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		MaxRetainedJobs: *maxJobs,
		RetainFor:       *retain,
		Trace:           *trace,
		// A network service must never park a connection on a full
		// queue; shed load and let the handler answer 429 + Retry-After.
		LoadShed: true,
		// One structured record per terminal job, from the worker that
		// finished it.
		OnTerminal: func(st engine.Status) {
			logger.Info("job done",
				slog.String("job_id", st.ID),
				slog.String("state", st.State),
				slog.String("benchmark", st.Benchmark),
				slog.Bool("cache_hit", st.CacheHit),
				slog.Bool("deduped", st.Deduped),
				slog.Duration("queue_wait", st.QueueWait),
				slog.Duration("run_time", st.RunTime),
			)
		},
	})
	handler := server.New(eng)
	if *logRequests {
		handler.Logger = logger
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Defenses against slow or abusive clients: a peer may not dribble
		// headers forever, idle keep-alives are reaped, and headers are
		// size-capped. No WriteTimeout — the server-side ?wait clamp
		// already bounds long-polls, and SVG downloads may be large.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute, // full request incl. 8 MiB BLIF body
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		slog.String("addr", *addr),
		slog.Int("workers", *workers),
		slog.Int("queue_cap", eng.Stats().QueueCap),
		slog.Int("cache", *cache),
		slog.Duration("timeout", *timeout),
		slog.Int("max_jobs", *maxJobs),
		slog.Duration("retain", *retain),
		slog.Bool("trace", *trace),
	)

	// pprof lives on its own listener so profiling endpoints are never
	// reachable through the public API address. Handlers are registered
	// explicitly on a private mux — importing net/http/pprof for its
	// DefaultServeMux side effect would leak them onto any handler that
	// falls through to the default mux.
	var dbg *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", slog.String("error", err.Error()))
			}
		}()
		logger.Info("pprof listening", slog.String("addr", *debugAddr))
	}

	select {
	case err := <-errc:
		logger.Error("serve", slog.String("error", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down, draining in-flight jobs", slog.Duration("budget", *drain))

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", slog.String("error", err.Error()))
	}
	if dbg != nil {
		if err := dbg.Shutdown(shutdownCtx); err != nil {
			logger.Warn("debug shutdown", slog.String("error", err.Error()))
		}
	}
	if err := eng.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("engine shutdown", slog.String("error", err.Error()))
	}
	logger.Info("bye")
}

// newLogger builds the process logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want \"text\" or \"json\")", format)
	}
}
