// Command tables regenerates the paper's evaluation tables: Table 1 (area
// mode: instance area, final chip area, and total interconnect length after
// detailed routing; MIS 2.1 vs Lily) and Table 2 (timing mode: instance
// area and longest path delay; MIS 2.1 vs Lily).
//
// Usage:
//
//	tables -table 1            # Table 1 over the full suite
//	tables -table 2            # Table 2 over the 12 timing circuits
//	tables -table 1 -only C432 # single row
package main

import (
	"flag"
	"fmt"
	"os"

	"lily"
)

func main() {
	table := flag.Int("table", 1, "which table to regenerate (1 or 2)")
	only := flag.String("only", "", "run a single named circuit")
	verify := flag.Bool("verify", false, "verify mapped netlists against the source circuits")
	autotune := flag.Bool("autotune", false, "let Lily retry with the paper's §5 remedies and keep the best run")
	flag.Parse()

	var names []string
	switch *table {
	case 1:
		names = lily.BenchmarkNames()
	case 2:
		names = lily.Table2Names()
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %d\n", *table)
		os.Exit(2)
	}
	if *only != "" {
		names = []string{*only}
	}

	if *table == 1 {
		runTable1(names, *verify, *autotune)
	} else {
		runTable2(names, *verify, *autotune)
	}
}

func runTable1(names []string, verify, autotune bool) {
	fmt.Println("Table 1: area mode — MIS2.1 vs Lily (instance area, chip area, wirelength)")
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s\n",
		"Ex.", "mis inst", "mis chip", "mis WL", "lily inst", "lily chip", "lily WL",
		"Δinst", "Δchip", "ΔWL")
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s\n",
		"", "mm²", "mm²", "mm", "mm²", "mm²", "mm", "%", "%", "%")
	var sumMI, sumMC, sumMW, sumLI, sumLC, sumLW float64
	var gi, gc, gw float64 // geometric-mean accumulators (log-free: products)
	count := 0
	for _, name := range names {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			fatal(err)
		}
		m, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper: lily.MapperMIS, Objective: lily.ObjectiveArea, VerifyEquivalence: verify})
		if err != nil {
			fatal(err)
		}
		l, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper: lily.MapperLily, Objective: lily.ObjectiveArea,
			AutoTune: autotune, VerifyEquivalence: verify})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f\n",
			name, m.ActiveAreaMM2, m.ChipAreaMM2, m.WirelengthMM,
			l.ActiveAreaMM2, l.ChipAreaMM2, l.WirelengthMM,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2),
			pct(l.ChipAreaMM2, m.ChipAreaMM2),
			pct(l.WirelengthMM, m.WirelengthMM))
		sumMI += m.ActiveAreaMM2
		sumMC += m.ChipAreaMM2
		sumMW += m.WirelengthMM
		sumLI += l.ActiveAreaMM2
		sumLC += l.ChipAreaMM2
		sumLW += l.WirelengthMM
		gi += pct(l.ActiveAreaMM2, m.ActiveAreaMM2)
		gc += pct(l.ChipAreaMM2, m.ChipAreaMM2)
		gw += pct(l.WirelengthMM, m.WirelengthMM)
		count++
	}
	fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f\n",
		"TOTAL", sumMI, sumMC, sumMW, sumLI, sumLC, sumLW,
		pct(sumLI, sumMI), pct(sumLC, sumMC), pct(sumLW, sumMW))
	fmt.Printf("average per-circuit change: inst %+.1f%%  chip %+.1f%%  WL %+.1f%%\n",
		gi/float64(count), gc/float64(count), gw/float64(count))
	fmt.Println("paper reports: inst +1.9%  chip -5%  WL -7% (averages)")
}

func runTable2(names []string, verify, autotune bool) {
	fmt.Println("Table 2: timing mode — MIS2.1 vs Lily (instance area, longest path delay)")
	fmt.Printf("%-8s | %10s %8s | %10s %8s | %6s %6s\n",
		"Ex.", "mis inst", "mis dly", "lily inst", "lily dly", "Δinst", "Δdly")
	var sumMD, sumLD, dAcc float64
	count := 0
	for _, name := range names {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			fatal(err)
		}
		m, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper: lily.MapperMIS, Objective: lily.ObjectiveDelay, VerifyEquivalence: verify})
		if err != nil {
			fatal(err)
		}
		l, err := lily.RunFlow(c, lily.FlowOptions{
			Mapper: lily.MapperLily, Objective: lily.ObjectiveDelay,
			AutoTune: autotune, VerifyEquivalence: verify})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s | %10.3f %8.2f | %10.3f %8.2f | %+6.1f %+6.1f\n",
			name, m.ActiveAreaMM2, m.DelayNS, l.ActiveAreaMM2, l.DelayNS,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2), pct(l.DelayNS, m.DelayNS))
		sumMD += m.DelayNS
		sumLD += l.DelayNS
		dAcc += pct(l.DelayNS, m.DelayNS)
		count++
	}
	fmt.Printf("average delay change: %+.1f%% (paper reports -8%%)\n", dAcc/float64(count))
}

func pct(lilyVal, misVal float64) float64 {
	if misVal == 0 {
		return 0
	}
	return (lilyVal - misVal) / misVal * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
