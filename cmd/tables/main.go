// Command tables regenerates the paper's evaluation tables: Table 1 (area
// mode: instance area, final chip area, and total interconnect length after
// detailed routing; MIS 2.1 vs Lily) and Table 2 (timing mode: instance
// area and longest path delay; MIS 2.1 vs Lily).
//
// The benchmark suite fans out across the concurrent flow engine's worker
// pool (each circuit × mapper run is an independent, deterministic job),
// while rows print in suite order — the numbers are identical to a
// sequential run.
//
// Usage:
//
//	tables -table 1            # Table 1 over the full suite
//	tables -table 2            # Table 2 over the 12 timing circuits
//	tables -table 1 -only C432 # single row
//	tables -table 1 -workers 4 # bound the worker pool
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"lily"
	"lily/internal/engine"
)

func main() {
	table := flag.Int("table", 1, "which table to regenerate (1 or 2)")
	only := flag.String("only", "", "run a single named circuit")
	verify := flag.Bool("verify", false, "verify mapped netlists against the source circuits")
	autotune := flag.Bool("autotune", false, "let Lily retry with the paper's §5 remedies and keep the best run")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "flow-engine worker-pool size")
	flag.Parse()

	var names []string
	switch *table {
	case 1:
		names = lily.BenchmarkNames()
	case 2:
		names = lily.Table2Names()
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %d\n", *table)
		os.Exit(2)
	}
	if *only != "" {
		names = []string{*only}
	}

	objective := lily.ObjectiveArea
	if *table == 2 {
		objective = lily.ObjectiveDelay
	}

	eng := engine.New(engine.Config{Workers: *workers})
	defer func() { _ = eng.Shutdown(context.Background()) }()
	rows := submitSuite(eng, names, objective, *verify, *autotune)

	if *table == 1 {
		runTable1(names, rows)
	} else {
		runTable2(names, rows)
	}
}

// row holds the two jobs of one table line.
type row struct {
	mis, lily *engine.Job
}

// submitSuite fans the whole suite out across the engine's worker pool:
// one job per circuit × mapper, submitted up front so workers stay busy
// while rows are reaped in print order.
func submitSuite(eng *engine.Engine, names []string, objective lily.Objective, verify, autotune bool) map[string]row {
	ctx := context.Background()
	rows := make(map[string]row, len(names))
	for _, name := range names {
		m, err := eng.Submit(ctx, engine.Request{
			Benchmark: name,
			Options: lily.FlowOptions{
				Mapper: lily.MapperMIS, Objective: objective, VerifyEquivalence: verify},
		})
		if err != nil {
			fatal(err)
		}
		l, err := eng.Submit(ctx, engine.Request{
			Benchmark: name,
			Options: lily.FlowOptions{
				Mapper: lily.MapperLily, Objective: objective,
				AutoTune: autotune, VerifyEquivalence: verify},
		})
		if err != nil {
			fatal(err)
		}
		rows[name] = row{mis: m, lily: l}
	}
	return rows
}

// reap blocks until both jobs of a row finish and returns their results.
func (r row) reap() (m, l *lily.FlowResult) {
	ctx := context.Background()
	mo, err := r.mis.Wait(ctx)
	if err != nil {
		fatal(err)
	}
	lo, err := r.lily.Wait(ctx)
	if err != nil {
		fatal(err)
	}
	return mo.Result, lo.Result
}

func runTable1(names []string, rows map[string]row) {
	fmt.Println("Table 1: area mode — MIS2.1 vs Lily (instance area, chip area, wirelength)")
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s\n",
		"Ex.", "mis inst", "mis chip", "mis WL", "lily inst", "lily chip", "lily WL",
		"Δinst", "Δchip", "ΔWL")
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s\n",
		"", "mm²", "mm²", "mm", "mm²", "mm²", "mm", "%", "%", "%")
	var sumMI, sumMC, sumMW, sumLI, sumLC, sumLW float64
	var gi, gc, gw float64 // geometric-mean accumulators (log-free: products)
	count := 0
	for _, name := range names {
		m, l := rows[name].reap()
		fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f\n",
			name, m.ActiveAreaMM2, m.ChipAreaMM2, m.WirelengthMM,
			l.ActiveAreaMM2, l.ChipAreaMM2, l.WirelengthMM,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2),
			pct(l.ChipAreaMM2, m.ChipAreaMM2),
			pct(l.WirelengthMM, m.WirelengthMM))
		sumMI += m.ActiveAreaMM2
		sumMC += m.ChipAreaMM2
		sumMW += m.WirelengthMM
		sumLI += l.ActiveAreaMM2
		sumLC += l.ChipAreaMM2
		sumLW += l.WirelengthMM
		gi += pct(l.ActiveAreaMM2, m.ActiveAreaMM2)
		gc += pct(l.ChipAreaMM2, m.ChipAreaMM2)
		gw += pct(l.WirelengthMM, m.WirelengthMM)
		count++
	}
	fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f\n",
		"TOTAL", sumMI, sumMC, sumMW, sumLI, sumLC, sumLW,
		pct(sumLI, sumMI), pct(sumLC, sumMC), pct(sumLW, sumMW))
	fmt.Printf("average per-circuit change: inst %+.1f%%  chip %+.1f%%  WL %+.1f%%\n",
		gi/float64(count), gc/float64(count), gw/float64(count))
	fmt.Println("paper reports: inst +1.9%  chip -5%  WL -7% (averages)")
}

func runTable2(names []string, rows map[string]row) {
	fmt.Println("Table 2: timing mode — MIS2.1 vs Lily (instance area, longest path delay)")
	fmt.Printf("%-8s | %10s %8s | %10s %8s | %6s %6s\n",
		"Ex.", "mis inst", "mis dly", "lily inst", "lily dly", "Δinst", "Δdly")
	var sumMD, sumLD, dAcc float64
	count := 0
	for _, name := range names {
		m, l := rows[name].reap()
		fmt.Printf("%-8s | %10.3f %8.2f | %10.3f %8.2f | %+6.1f %+6.1f\n",
			name, m.ActiveAreaMM2, m.DelayNS, l.ActiveAreaMM2, l.DelayNS,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2), pct(l.DelayNS, m.DelayNS))
		sumMD += m.DelayNS
		sumLD += l.DelayNS
		dAcc += pct(l.DelayNS, m.DelayNS)
		count++
	}
	fmt.Printf("average delay change: %+.1f%% (paper reports -8%%)\n", dAcc/float64(count))
}

func pct(lilyVal, misVal float64) float64 {
	if misVal == 0 {
		return 0
	}
	return (lilyVal - misVal) / misVal * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
