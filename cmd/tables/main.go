// Command tables regenerates the paper's evaluation tables: Table 1 (area
// mode: instance area, final chip area, and total interconnect length after
// detailed routing; MIS 2.1 vs Lily) and Table 2 (timing mode: instance
// area and longest path delay; MIS 2.1 vs Lily).
//
// The benchmark suite fans out across the concurrent flow engine's worker
// pool (each circuit × mapper run is an independent, deterministic job),
// while rows print in suite order — the numbers are identical to a
// sequential run.
//
// With -server the suite is submitted to a running lilyd (or a whole
// cluster — any node works, jobs route to their digest owners) through
// the batch API: one POST /v1/batches, then the NDJSON result stream
// fills rows as they complete. Because mapping is deterministic, the
// remote tables are byte-identical to local ones.
//
// Usage:
//
//	tables -table 1            # Table 1 over the full suite
//	tables -table 2            # Table 2 over the 12 timing circuits
//	tables -table 1 -only C432 # single row
//	tables -table 1 -workers 4 # bound the worker pool
//	tables -table 1 -server http://localhost:8081   # via lilyd batch API
//	tables -table 1 -target lut4                    # extra FPGA columns
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"

	"lily"
	"lily/internal/engine"
	"lily/internal/server"
)

func main() {
	table := flag.Int("table", 1, "which table to regenerate (1 or 2)")
	only := flag.String("only", "", "run a single named circuit")
	verify := flag.Bool("verify", false, "verify mapped netlists against the source circuits")
	autotune := flag.Bool("autotune", false, "let Lily retry with the paper's §5 remedies and keep the best run")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "flow-engine worker-pool size")
	parallelism := flag.Int("parallelism", 0,
		"intra-job workers for the cover DP and placement solves (0 = sequential; results are bit-identical at any setting)")
	serverURL := flag.String("server", "", "lilyd base URL; run the suite through its batch API instead of in-process")
	target := flag.String("target", "asic",
		"add FPGA columns mapped at this technology target: asic (none), lut4, or lut6")
	flag.Parse()

	tgt, err := lily.ParseTechnologyTarget(*target)
	if err != nil {
		fatal(err)
	}

	var names []string
	switch *table {
	case 1:
		names = lily.BenchmarkNames()
	case 2:
		names = lily.Table2Names()
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %d\n", *table)
		os.Exit(2)
	}
	if *only != "" {
		names = []string{*only}
	}

	objective := lily.ObjectiveArea
	if *table == 2 {
		objective = lily.ObjectiveDelay
	}

	var rows map[string]row
	if *serverURL != "" {
		rows = submitBatch(*serverURL, names, objective, tgt, *verify, *autotune, *parallelism)
	} else {
		eng := engine.New(engine.Config{Workers: *workers, Parallelism: *parallelism})
		defer func() { _ = eng.Shutdown(context.Background()) }()
		rows = submitSuite(eng, names, objective, tgt, *verify, *autotune)
	}

	if *table == 1 {
		runTable1(names, rows, tgt)
	} else {
		runTable2(names, rows, tgt)
	}
}

// row yields one table line: the MIS and Lily results of a circuit,
// plus the Lily FPGA result when a LUT target is selected (nil
// otherwise). reap blocks until all are available.
type row interface {
	reap() (m, l, f *lily.FlowResult)
}

// jobRow holds the in-process engine jobs of one table line. fpga is
// nil unless a LUT target was requested.
type jobRow struct {
	mis, lily, fpga *engine.Job
}

// submitSuite fans the whole suite out across the engine's worker pool:
// one job per circuit × mapper, submitted up front so workers stay busy
// while rows are reaped in print order.
func submitSuite(eng *engine.Engine, names []string, objective lily.Objective, tgt lily.TechnologyTarget, verify, autotune bool) map[string]row {
	ctx := context.Background()
	rows := make(map[string]row, len(names))
	for _, name := range names {
		m, err := eng.Submit(ctx, engine.Request{
			Benchmark: name,
			Options: lily.FlowOptions{
				Mapper: lily.MapperMIS, Objective: objective, VerifyEquivalence: verify},
		})
		if err != nil {
			fatal(err)
		}
		l, err := eng.Submit(ctx, engine.Request{
			Benchmark: name,
			Options: lily.FlowOptions{
				Mapper: lily.MapperLily, Objective: objective,
				AutoTune: autotune, VerifyEquivalence: verify},
		})
		if err != nil {
			fatal(err)
		}
		r := jobRow{mis: m, lily: l}
		if tgt != lily.TargetASIC {
			r.fpga, err = eng.Submit(ctx, engine.Request{
				Benchmark: name,
				Options: lily.FlowOptions{
					Mapper: lily.MapperLily, Objective: objective, Target: tgt,
					VerifyEquivalence: verify},
			})
			if err != nil {
				fatal(err)
			}
		}
		rows[name] = r
	}
	return rows
}

// reap blocks until the jobs of a row finish and returns their results.
func (r jobRow) reap() (m, l, f *lily.FlowResult) {
	ctx := context.Background()
	mo, err := r.mis.Wait(ctx)
	if err != nil {
		fatal(err)
	}
	lo, err := r.lily.Wait(ctx)
	if err != nil {
		fatal(err)
	}
	if r.fpga == nil {
		return mo.Result, lo.Result, nil
	}
	fo, err := r.fpga.Wait(ctx)
	if err != nil {
		fatal(err)
	}
	return mo.Result, lo.Result, fo.Result
}

// remoteRow holds the futures filled by the batch-stream collector. The
// channels are buffered so the collector never blocks on a row the
// printer hasn't reached yet. fpga is nil unless a LUT target was
// requested.
type remoteRow struct {
	mis, lily, fpga chan *lily.FlowResult
}

func (r remoteRow) reap() (m, l, f *lily.FlowResult) {
	m, l = <-r.mis, <-r.lily
	if r.fpga != nil {
		f = <-r.fpga
	}
	return m, l, f
}

// submitBatch runs the suite through a lilyd batch: one POST with two
// jobs per circuit (stride i = MIS, i+1 = Lily, and i+2 = Lily at the
// LUT target when one is selected), then a collector goroutine drains
// the NDJSON result stream into per-row futures. Rows still print in
// suite order; the stream arrives in completion order.
func submitBatch(base string, names []string, objective lily.Objective, tgt lily.TechnologyTarget, verify, autotune bool, parallelism int) map[string]row {
	base = strings.TrimRight(base, "/")
	obj := "area"
	if objective == lily.ObjectiveDelay {
		obj = "delay"
	}
	stride := 2
	if tgt != lily.TargetASIC {
		stride = 3
	}
	req := server.BatchSubmitRequest{Jobs: make([]server.SubmitRequest, 0, stride*len(names))}
	for _, name := range names {
		req.Jobs = append(req.Jobs,
			server.SubmitRequest{Benchmark: name, Options: server.JobOptions{
				Mapper: "mis", Objective: obj, Verify: verify}},
			server.SubmitRequest{Benchmark: name, Options: server.JobOptions{
				Mapper: "lily", Objective: obj, Verify: verify, AutoTune: autotune,
				Parallelism: parallelism}},
		)
		if stride == 3 {
			req.Jobs = append(req.Jobs,
				server.SubmitRequest{Benchmark: name, Options: server.JobOptions{
					Mapper: "lily", Objective: obj, Target: tgt.String(),
					Verify: verify, Parallelism: parallelism}},
			)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{} // no client timeout: the stream lasts as long as the suite
	resp, err := client.Post(base+"/v1/batches", "application/json", strings.NewReader(string(body)))
	if err != nil {
		fatal(err)
	}
	var ack server.BatchSubmitResponse
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		fatal(fmt.Errorf("batch submit: %s: %s", resp.Status, e.Error))
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		resp.Body.Close()
		fatal(fmt.Errorf("batch submit: decoding ack: %w", err))
	}
	resp.Body.Close()

	rows := make(map[string]row, len(names))
	byIndex := make([]chan *lily.FlowResult, stride*len(names))
	for i, name := range names {
		r := remoteRow{
			mis:  make(chan *lily.FlowResult, 1),
			lily: make(chan *lily.FlowResult, 1),
		}
		byIndex[stride*i], byIndex[stride*i+1] = r.mis, r.lily
		if stride == 3 {
			r.fpga = make(chan *lily.FlowResult, 1)
			byIndex[stride*i+2] = r.fpga
		}
		rows[name] = r
	}
	go streamBatch(client, base+ack.Stream, byIndex)
	return rows
}

// streamBatch drains one batch's NDJSON stream, routing each line's
// result to its index's future. Any failed job (or a broken stream)
// aborts the run — a table with holes is worse than no table.
func streamBatch(client *http.Client, url string, byIndex []chan *lily.FlowResult) {
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("batch stream: %s", resp.Status))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	seen := 0
	for sc.Scan() {
		var line server.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			fatal(fmt.Errorf("batch stream: bad line: %w", err))
		}
		if line.State != "done" || line.Result == nil {
			fatal(fmt.Errorf("job %s (%s): state %s: %s",
				line.JobID, line.Benchmark, line.State, line.Error))
		}
		if line.Index < 0 || line.Index >= len(byIndex) {
			fatal(fmt.Errorf("batch stream: index %d out of range", line.Index))
		}
		byIndex[line.Index] <- line.Result
		seen++
	}
	if err := sc.Err(); err != nil {
		fatal(fmt.Errorf("batch stream: %w", err))
	}
	if seen != len(byIndex) {
		fatal(fmt.Errorf("batch stream ended after %d of %d results", seen, len(byIndex)))
	}
}

func runTable1(names []string, rows map[string]row, tgt lily.TechnologyTarget) {
	fmt.Println("Table 1: area mode — MIS2.1 vs Lily (instance area, chip area, wirelength)")
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s",
		"Ex.", "mis inst", "mis chip", "mis WL", "lily inst", "lily chip", "lily WL",
		"Δinst", "Δchip", "ΔWL")
	if tgt != lily.TargetASIC {
		fmt.Printf(" | %9s %8s", tgt.String()+" n", tgt.String()+" WL")
	}
	fmt.Println()
	fmt.Printf("%-8s | %10s %10s %8s | %10s %10s %8s | %6s %6s %6s",
		"", "mm²", "mm²", "mm", "mm²", "mm²", "mm", "%", "%", "%")
	if tgt != lily.TargetASIC {
		fmt.Printf(" | %9s %8s", "LUTs", "mm")
	}
	fmt.Println()
	var sumMI, sumMC, sumMW, sumLI, sumLC, sumLW float64
	var sumFN int
	var gi, gc, gw float64 // geometric-mean accumulators (log-free: products)
	count := 0
	for _, name := range names {
		m, l, f := rows[name].reap()
		fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f",
			name, m.ActiveAreaMM2, m.ChipAreaMM2, m.WirelengthMM,
			l.ActiveAreaMM2, l.ChipAreaMM2, l.WirelengthMM,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2),
			pct(l.ChipAreaMM2, m.ChipAreaMM2),
			pct(l.WirelengthMM, m.WirelengthMM))
		if f != nil {
			fmt.Printf(" | %9d %8.2f", f.Gates, f.WirelengthMM)
			sumFN += f.Gates
		}
		fmt.Println()
		sumMI += m.ActiveAreaMM2
		sumMC += m.ChipAreaMM2
		sumMW += m.WirelengthMM
		sumLI += l.ActiveAreaMM2
		sumLC += l.ChipAreaMM2
		sumLW += l.WirelengthMM
		gi += pct(l.ActiveAreaMM2, m.ActiveAreaMM2)
		gc += pct(l.ChipAreaMM2, m.ChipAreaMM2)
		gw += pct(l.WirelengthMM, m.WirelengthMM)
		count++
	}
	fmt.Printf("%-8s | %10.3f %10.3f %8.2f | %10.3f %10.3f %8.2f | %+6.1f %+6.1f %+6.1f",
		"TOTAL", sumMI, sumMC, sumMW, sumLI, sumLC, sumLW,
		pct(sumLI, sumMI), pct(sumLC, sumMC), pct(sumLW, sumMW))
	if tgt != lily.TargetASIC {
		fmt.Printf(" | %9d %8s", sumFN, "")
	}
	fmt.Println()
	fmt.Printf("average per-circuit change: inst %+.1f%%  chip %+.1f%%  WL %+.1f%%\n",
		gi/float64(count), gc/float64(count), gw/float64(count))
	fmt.Println("paper reports: inst +1.9%  chip -5%  WL -7% (averages)")
}

func runTable2(names []string, rows map[string]row, tgt lily.TechnologyTarget) {
	fmt.Println("Table 2: timing mode — MIS2.1 vs Lily (instance area, longest path delay)")
	fmt.Printf("%-8s | %10s %8s | %10s %8s | %6s %6s",
		"Ex.", "mis inst", "mis dly", "lily inst", "lily dly", "Δinst", "Δdly")
	if tgt != lily.TargetASIC {
		fmt.Printf(" | %9s %8s", tgt.String()+" n", tgt.String()+" dly")
	}
	fmt.Println()
	var sumMD, sumLD, dAcc float64
	count := 0
	for _, name := range names {
		m, l, f := rows[name].reap()
		fmt.Printf("%-8s | %10.3f %8.2f | %10.3f %8.2f | %+6.1f %+6.1f",
			name, m.ActiveAreaMM2, m.DelayNS, l.ActiveAreaMM2, l.DelayNS,
			pct(l.ActiveAreaMM2, m.ActiveAreaMM2), pct(l.DelayNS, m.DelayNS))
		if f != nil {
			fmt.Printf(" | %9d %8.2f", f.Gates, f.DelayNS)
		}
		fmt.Println()
		sumMD += m.DelayNS
		sumLD += l.DelayNS
		dAcc += pct(l.DelayNS, m.DelayNS)
		count++
	}
	fmt.Printf("average delay change: %+.1f%% (paper reports -8%%)\n", dAcc/float64(count))
}

func pct(lilyVal, misVal float64) float64 {
	if misVal == 0 {
		return 0
	}
	return (lilyVal - misVal) / misVal * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
