// Command lilylint is the project's static-analysis suite. It runs in
// two modes:
//
//	lilylint ./...                         standalone, offline loader
//	go vet -vettool=$(which lilylint) ./... vet driver (unitchecker protocol)
//
// The suite enforces the invariants documented in DESIGN.md: map
// iteration determinism in mapping packages (maporder), context
// cancellation in long-running loops (ctxloop), float-equality hygiene
// in cost packages (floateq), lock discipline for methods documented
// `requires e.mu` (lockheld), plus three cross-package analyzers over
// the whole-program call graph: the determinism fence (purity),
// goroutine stop paths (goleak), and HTTP response discipline
// (httpcontract).
//
// Exit codes: 0 clean, 1 findings, 2 operational error.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lily/internal/lint"
)

func main() {
	os.Exit(run(os.Args))
}

func run(argv []string) int {
	progname := filepath.Base(argv[0])
	args := argv[1:]

	// go vet driver handshake: the go command probes the tool's
	// identity (-V=full, folded into the build cache key) and its flag
	// set (-flags, a JSON array) before sending package configs.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// Shape required by the go command's tool-ID parser:
			// "<name> version <non-devel-version>".
			fmt.Printf("%s version 1.0.0\n", progname)
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		case a == "-h" || a == "-help" || a == "--help":
			fmt.Fprintf(os.Stderr, "usage: %s [package pattern ...]\n", progname)
			fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which %s) ./...\n", progname)
			fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
			for _, an := range lint.Analyzers {
				doc := an.Doc
				if i := strings.IndexByte(doc, '\n'); i >= 0 {
					doc = doc[:i]
				}
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", an.Name, doc)
			}
			fmt.Fprintf(os.Stderr, "\nCross-package analyzers (whole-program call graph):\n")
			for _, an := range lint.ProgramAnalyzers {
				doc := an.Doc
				if i := strings.IndexByte(doc, '\n'); i >= 0 {
					doc = doc[:i]
				}
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", an.Name, doc)
			}
			return 0
		}
	}

	// Unitchecker mode: a single *.cfg argument written by the go
	// command describes one package unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := lint.RunUnit(args[0], os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		}
		return code
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	code, err := lint.RunStandalone(".", patterns, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
	}
	return code
}
