// Command benchgen writes the synthetic benchmark suite as BLIF files, one
// per circuit, so external tools can consume the same workloads the tables
// are generated from.
//
// Usage:
//
//	benchgen -out ./blif                # paper suite
//	benchgen -out ./blif -only C432
//	benchgen -out ./blif -scale        # 50k–500k-gate scale suite
//	benchgen -out ./blif -only gen100k
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lily"
)

func main() {
	out := flag.String("out", ".", "output directory")
	only := flag.String("only", "", "emit a single circuit (paper or scale suite)")
	scale := flag.Bool("scale", false, "emit the 50k–500k-gate scale suite instead of the paper suite")
	flag.Parse()

	names := lily.BenchmarkNames()
	if *scale {
		names = lily.ScaleBenchmarkNames()
	}
	if *only != "" {
		names = []string{*only}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		c, err := lily.GenerateBenchmark(name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := c.WriteBLIF(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := c.Stats()
		fmt.Printf("%s: %d PIs, %d POs, %d nodes -> %s\n", name, st.PIs, st.POs, st.Nodes, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
