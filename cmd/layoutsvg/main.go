// Command layoutsvg runs a pipeline on a circuit and writes the finished
// standard-cell layout as an SVG image: cell rows colored by gate fanin,
// pads on the boundary, and optionally the longest nets as rectilinear
// spanning trees.
//
// Usage:
//
//	layoutsvg -circuit C432 -mapper lily -o c432_lily.svg
//	layoutsvg -circuit C432 -mapper mis -nets 50 -o c432_mis.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"lily"
)

func main() {
	circuit := flag.String("circuit", "C432", "benchmark name")
	mapper := flag.String("mapper", "lily", "mapper: lily or mis")
	mode := flag.String("mode", "area", "objective: area or delay")
	out := flag.String("o", "layout.svg", "output SVG path")
	nets := flag.Int("nets", 0, "draw the N longest nets (0 = none)")
	scale := flag.Float64("scale", 0.25, "pixels per µm")
	flag.Parse()

	c, err := lily.GenerateBenchmark(*circuit)
	if err != nil {
		fatal(err)
	}
	opt := lily.FlowOptions{}
	switch *mapper {
	case "lily":
		opt.Mapper = lily.MapperLily
	case "mis":
		opt.Mapper = lily.MapperMIS
	default:
		fatal(fmt.Errorf("unknown mapper %q", *mapper))
	}
	if *mode == "delay" {
		opt.Objective = lily.ObjectiveDelay
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := lily.RenderLayoutSVG(c, opt, f, lily.SVGOptions{
		Scale: *scale, DrawNets: *nets > 0, MaxNets: *nets,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d gates, %.3f mm² chip, %.2f mm wire -> %s\n",
		*circuit, res.Gates, res.ChipAreaMM2, res.WirelengthMM, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutsvg:", err)
	os.Exit(1)
}
