// Command sta runs a pipeline and prints a timing report: longest path
// delay, the critical path, and — against a target clock period — worst
// slack and violation counts.
//
// Usage:
//
//	sta -circuit C1908 -mapper lily -period 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lily"
)

func main() {
	circuit := flag.String("circuit", "C432", "benchmark name")
	blif := flag.String("blif", "", "path to a combinational BLIF file")
	mapper := flag.String("mapper", "lily", "mapper: lily or mis")
	period := flag.Float64("period", 0, "clock period in ns (0: skip slack analysis)")
	flag.Parse()

	var c *lily.Circuit
	var err error
	if *blif != "" {
		f, ferr := os.Open(*blif)
		if ferr != nil {
			fatal(ferr)
		}
		c, err = lily.LoadBLIF(f)
		f.Close()
	} else {
		c, err = lily.GenerateBenchmark(*circuit)
	}
	if err != nil {
		fatal(err)
	}

	opt := lily.FlowOptions{Objective: lily.ObjectiveDelay, ClockPeriodNS: *period}
	switch *mapper {
	case "lily":
		opt.Mapper = lily.MapperLily
	case "mis":
		opt.Mapper = lily.MapperMIS
	default:
		fatal(fmt.Errorf("unknown mapper %q", *mapper))
	}

	res, err := lily.RunFlow(c, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit        %s (%s, delay mode)\n", res.Circuit, res.Mapper)
	fmt.Printf("gates          %d (%.4f mm² active)\n", res.Gates, res.ActiveAreaMM2)
	fmt.Printf("longest path   %.3f ns\n", res.DelayNS)
	fmt.Printf("critical path  %s\n", strings.Join(res.CriticalPath, " -> "))
	if *period > 0 {
		fmt.Printf("clock period   %.3f ns\n", *period)
		fmt.Printf("worst slack    %+.3f ns\n", res.WorstSlackNS)
		if res.ViolatingCells > 0 {
			fmt.Printf("VIOLATED       %d cells with negative slack\n", res.ViolatingCells)
			os.Exit(1)
		}
		fmt.Println("met            all cells have non-negative slack")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sta:", err)
	os.Exit(1)
}
