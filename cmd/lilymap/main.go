// Command lilymap runs one synthesis → layout pipeline on a benchmark or a
// BLIF file and prints the paper's metrics.
//
// Usage:
//
//	lilymap -circuit C432                       # Lily, area mode
//	lilymap -circuit C5315 -mapper mis -mode delay
//	lilymap -blif design.blif -lambda 0.5 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lily"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name (see -list)")
	blif := flag.String("blif", "", "path to a combinational BLIF file")
	mapper := flag.String("mapper", "lily", "mapper: lily or mis")
	mode := flag.String("mode", "area", "objective: area or delay")
	target := flag.String("target", "asic", "technology target: asic, lut4, or lut6")
	libChoice := flag.String("lib", "big", "library: big (≤6-input) or tiny (≤3-input)")
	lambda := flag.Float64("lambda", 1.0, "Lily wire-cost weight λ")
	update := flag.String("update", "cm-of-fans", "Lily placement update: cm-of-fans, cm-of-merged, median")
	estimator := flag.String("wire", "hpwl", "Lily wire estimator: hpwl or rmst")
	noOrder := flag.Bool("no-cone-order", false, "disable §3.5 cone ordering")
	tree := flag.Bool("tree", false, "MIS: DAGON tree-covering mode")
	verify := flag.Bool("verify", false, "verify mapped netlist against source")
	parallelism := flag.Int("parallelism", 0, "intra-run worker bound (0 = sequential; output is identical at any setting)")
	mlThreshold := flag.Int("multilevel-threshold", 0,
		"movable-cell count above which placement uses the multilevel V-cycle (0 = default 25000, negative disables)")
	list := flag.Bool("list", false, "list benchmark names and exit")
	showPath := flag.Bool("path", false, "print the critical path")
	outBLIF := flag.String("o", "", "write the mapped, placed netlist as .gate BLIF to this path")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(lily.BenchmarkNames(), " "))
		fmt.Println(strings.Join(lily.ScaleBenchmarkNames(), " "))
		return
	}

	var c *lily.Circuit
	var err error
	switch {
	case *blif != "":
		f, ferr := os.Open(*blif)
		if ferr != nil {
			fatal(ferr)
		}
		c, err = lily.LoadBLIF(f)
		f.Close()
	case *circuit != "":
		c, err = lily.GenerateBenchmark(*circuit)
	default:
		fmt.Fprintln(os.Stderr, "lilymap: need -circuit or -blif (try -list)")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	opt := lily.FlowOptions{
		WireWeight:          *lambda,
		DisableConeOrdering: *noOrder,
		TreeMode:            *tree,
		VerifyEquivalence:   *verify,
		Parallelism:         *parallelism,
		MultilevelThreshold: *mlThreshold,
	}
	switch *mapper {
	case "lily":
		opt.Mapper = lily.MapperLily
	case "mis":
		opt.Mapper = lily.MapperMIS
	default:
		fatal(fmt.Errorf("unknown mapper %q", *mapper))
	}
	switch *mode {
	case "area":
		opt.Objective = lily.ObjectiveArea
	case "delay":
		opt.Objective = lily.ObjectiveDelay
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *libChoice {
	case "big":
		opt.Library = lily.LibraryBig
	case "tiny":
		opt.Library = lily.LibraryTiny
	default:
		fatal(fmt.Errorf("unknown library %q", *libChoice))
	}
	switch *update {
	case "cm-of-fans":
		opt.Update = lily.UpdateCMOfFans
	case "cm-of-merged":
		opt.Update = lily.UpdateCMOfMerged
	case "median":
		opt.Update = lily.UpdateMedianFans
	default:
		fatal(fmt.Errorf("unknown update rule %q", *update))
	}
	switch *estimator {
	case "hpwl":
		opt.Estimator = lily.WireHPWLSteiner
	case "rmst":
		opt.Estimator = lily.WireSpanningTree
	default:
		fatal(fmt.Errorf("unknown estimator %q", *estimator))
	}
	tgt, err := lily.ParseTechnologyTarget(*target)
	if err != nil {
		fatal(err)
	}
	opt.Target = tgt

	st := c.Stats()
	fmt.Printf("circuit %s: %d PIs, %d POs, %d nodes, depth %d\n",
		c.Name(), st.PIs, st.POs, st.Nodes, st.Depth)

	var res *lily.FlowResult
	if *outBLIF != "" {
		f, ferr := os.Create(*outBLIF)
		if ferr != nil {
			fatal(ferr)
		}
		res, err = lily.WriteMappedBLIF(c, opt, f)
		if cerr := f.Close(); err == nil && cerr != nil {
			fatal(cerr)
		}
	} else {
		res, err = lily.RunFlow(c, opt)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mapper            %s (%s mode, %s library, %s target)\n",
		res.Mapper, res.Objective, *libChoice, res.Target)
	fmt.Printf("subject graph     %d NAND2/INV nodes\n", res.SubjectNodes)
	fmt.Printf("mapped gates      %d\n", res.Gates)
	fmt.Printf("instance area     %.4f mm²\n", res.ActiveAreaMM2)
	fmt.Printf("chip area         %.4f mm² (%d rows, peak channel density %d)\n",
		res.ChipAreaMM2, res.Rows, res.PeakChannelDensity)
	fmt.Printf("wirelength        %.2f mm\n", res.WirelengthMM)
	fmt.Printf("longest path      %.2f ns (to %s)\n", res.DelayNS, lastOf(res.CriticalPath))
	if res.Mapper == lily.MapperLily {
		fmt.Printf("lily life cycle   %d cones, %d reincarnations\n",
			res.LilyConesProcessed, res.LilyReincarnations)
	}
	if *showPath {
		fmt.Printf("critical path     %s\n", strings.Join(res.CriticalPath, " -> "))
	}
	var gates []string
	for g := range res.GateHistogram {
		gates = append(gates, g)
	}
	sort.Strings(gates)
	fmt.Printf("gate histogram   ")
	for _, g := range gates {
		fmt.Printf(" %s:%d", g, res.GateHistogram[g])
	}
	fmt.Println()
}

func lastOf(path []string) string {
	if len(path) == 0 {
		return "?"
	}
	return path[len(path)-1]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lilymap:", err)
	os.Exit(1)
}
