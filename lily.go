// Package lily is the public entry point of the library: a reproduction of
// "Layout Driven Technology Mapping" (Pedram & Bhat, DAC 1991). It wires
// the internal substrates — Boolean networks, NAND2/INV premapping, the
// synthetic standard-cell library, GORDIAN-style global placement, the MIS
// baseline mapper, the Lily layout-driven mapper, the standard-cell layout
// backend, and the wiring-aware static timing analyzer — into the two
// pipelines the paper compares in its Tables 1 and 2.
//
// Quick start:
//
//	c, _ := lily.GenerateBenchmark("C432")
//	res, _ := lily.RunFlow(c, lily.FlowOptions{Mapper: lily.MapperLily})
//	fmt.Println(res)
package lily

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"lily/internal/bench"
	"lily/internal/core"
	"lily/internal/decomp"
	"lily/internal/equiv"
	"lily/internal/fanout"
	"lily/internal/geom"
	"lily/internal/layout"
	"lily/internal/library"
	"lily/internal/logic"
	"lily/internal/mis"
	"lily/internal/netlist"
	"lily/internal/obs"
	netopt "lily/internal/opt"
	"lily/internal/place"
	"lily/internal/timing"
	"lily/internal/wire"
)

// Circuit is a technology-independent combinational Boolean network, the
// input to both mapping pipelines.
type Circuit struct {
	net *logic.Network
}

// GenerateBenchmark builds one of the synthetic stand-ins for the paper's
// MCNC/ISCAS-85 benchmarks (see DESIGN.md for the substitution rationale).
// Valid names: 9symml, C1908, C3540, C432, C499, C5315, C880, apex6,
// apex7, b9, apex3, duke2, e64, misex1, misex3 — plus the scale suite
// (ScaleBenchmarkNames): mid5k, mid10k, gen50k, gen100k, gen200k,
// gen500k.
func GenerateBenchmark(name string) (*Circuit, error) {
	p, ok := bench.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("lily: unknown benchmark %q", name)
	}
	return &Circuit{net: bench.Generate(p)}, nil
}

// BenchmarkNames returns the full benchmark suite in Table 1 order.
func BenchmarkNames() []string {
	var names []string
	for _, p := range bench.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// ScaleBenchmarkNames returns the synthetic scale suite in ascending size
// order: two midsize golden carriers (mid5k, mid10k) and the 50k–500k-gate
// generators that exercise the multilevel placement regime. Deliberately
// separate from BenchmarkNames so the Table 1/2 reproductions keep their
// fifteen rows.
func ScaleBenchmarkNames() []string {
	var names []string
	for _, p := range bench.ScaleProfiles() {
		names = append(names, p.Name)
	}
	return names
}

// Table2Names returns the 12 circuits of the paper's Table 2.
func Table2Names() []string { return bench.Table2Names() }

// LoadBLIF parses a combinational BLIF model.
func LoadBLIF(r io.Reader) (*Circuit, error) {
	n, err := logic.ParseBLIF(r)
	if err != nil {
		return nil, err
	}
	return &Circuit{net: n}, nil
}

// WriteBLIF writes the circuit as BLIF.
func (c *Circuit) WriteBLIF(w io.Writer) error { return logic.WriteBLIF(w, c.net) }

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.net.Name }

// Clone returns a deep, structurally identical copy of the circuit (node
// IDs and orderings preserved, so flows over a clone are byte-identical to
// flows over the original). Clones isolate concurrent pipeline runs that
// would otherwise share one network.
func (c *Circuit) Clone() *Circuit { return &Circuit{net: c.net.Clone()} }

// Stats describes a circuit.
type Stats struct {
	PIs, POs, Nodes, Literals, Depth int
}

// Stats summarizes the circuit.
func (c *Circuit) Stats() Stats {
	s := c.net.Stat()
	return Stats{PIs: s.PIs, POs: s.POs, Nodes: s.Logic, Literals: s.Literals, Depth: s.Depth}
}

// Eval simulates the circuit.
func (c *Circuit) Eval(in map[string]bool) (map[string]bool, error) { return c.net.Eval(in) }

// InputNames returns the primary input names.
func (c *Circuit) InputNames() []string {
	var names []string
	for _, pi := range c.net.PIs {
		names = append(names, c.net.Nodes[pi].Name)
	}
	return names
}

// Mapper selects the technology mapper.
type Mapper int

const (
	// MapperLily is the paper's layout-driven mapper.
	MapperLily Mapper = iota
	// MapperMIS is the MIS 2.1 baseline (layout-blind).
	MapperMIS
)

func (m Mapper) String() string {
	if m == MapperMIS {
		return "mis2.1"
	}
	return "lily"
}

// Objective selects the optimization target.
type Objective int

const (
	// ObjectiveArea minimizes layout area (Table 1).
	ObjectiveArea Objective = iota
	// ObjectiveDelay minimizes the longest path delay (Table 2).
	ObjectiveDelay
)

func (o Objective) String() string {
	if o == ObjectiveDelay {
		return "delay"
	}
	return "area"
}

// TechnologyTarget selects the implementation technology of the mapped
// netlist: the standard-cell library (the paper's flow) or K-input LUTs
// chosen by K-feasible cut enumeration on the same layout-driven
// covering engine. LUT targets require MapperLily.
type TechnologyTarget int

const (
	// TargetASIC maps onto the standard-cell library (default).
	TargetASIC TechnologyTarget = iota
	// TargetLUT4 maps onto 4-input LUTs.
	TargetLUT4
	// TargetLUT6 maps onto 6-input LUTs.
	TargetLUT6
)

func (t TechnologyTarget) String() string {
	switch t {
	case TargetLUT4:
		return "lut4"
	case TargetLUT6:
		return "lut6"
	default:
		return "asic"
	}
}

// ParseTechnologyTarget maps the CLI/API spelling of a target to its
// value; the empty string is TargetASIC. The error lists the accepted
// values, so the lilyd/tables/lilymap flags and the HTTP 400 path share
// one message.
func ParseTechnologyTarget(s string) (TechnologyTarget, error) {
	switch s {
	case "", "asic":
		return TargetASIC, nil
	case "lut4":
		return TargetLUT4, nil
	case "lut6":
		return TargetLUT6, nil
	default:
		return TargetASIC, fmt.Errorf("unknown target %q (want \"asic\", \"lut4\", or \"lut6\")", s)
	}
}

// LibraryChoice selects the target cell library.
type LibraryChoice int

const (
	// LibraryBig has gates up to 6 inputs (the paper's main setting).
	LibraryBig LibraryChoice = iota
	// LibraryTiny has gates up to 3 inputs (§5 discussion).
	LibraryTiny
)

func (l LibraryChoice) String() string {
	if l == LibraryTiny {
		return "tiny"
	}
	return "big"
}

// PlacementUpdate selects Lily's dynamic position update rule (§3.2).
type PlacementUpdate int

const (
	// UpdateCMOfFans positions a match at the center of mass of its
	// fanin/fanout rectangles (paper's experimental setting).
	UpdateCMOfFans PlacementUpdate = iota
	// UpdateCMOfMerged positions a match at the center of mass of the
	// nodes it covers.
	UpdateCMOfMerged
	// UpdateMedianFans uses the Manhattan-optimal median point.
	UpdateMedianFans
)

// WireEstimator selects the net-length model (§3.4).
type WireEstimator int

const (
	// WireHPWLSteiner uses half-perimeter × Chung–Hwang ratio.
	WireHPWLSteiner WireEstimator = iota
	// WireSpanningTree uses a rectilinear spanning tree.
	WireSpanningTree
)

// FlowOptions configures a full synthesis → layout run.
type FlowOptions struct {
	Mapper    Mapper
	Objective Objective
	Library   LibraryChoice
	// Target selects the implementation technology: TargetASIC (default)
	// covers with library gates, TargetLUT4/TargetLUT6 with K-input LUTs
	// (MapperLily only). Semantically significant: the engine's request
	// digest includes it, so different targets never share a cache entry.
	Target TechnologyTarget
	// WireWeight is Lily's λ on the routing-area cost term (default 1).
	WireWeight float64
	// Update is Lily's placement-update rule.
	Update PlacementUpdate
	// Estimator is Lily's wiring model.
	Estimator WireEstimator
	// DisableConeOrdering turns off the §3.5 cone ordering (ablation).
	DisableConeOrdering bool
	// ReplaceEvery re-runs global placement on the partially mapped
	// network after every N cones (§3.2); 0 disables.
	ReplaceEvery int
	// NaivePads skips connectivity-driven pad assignment and leaves pads
	// spread uniformly (§5 ablation: pad placement quality bounds Lily's
	// achievable wire reduction).
	NaivePads bool
	// TwoPassDelay enables the MIS 2.2-style load-recording preprocessing
	// in Lily's delay mode (§6): map once, record realized loads, remap.
	TwoPassDelay bool
	// RePlaceMapped discards Lily's constructive cell positions and lets
	// the backend run a fresh global placement of the mapped netlist
	// (ablation: how much of Lily's win is netlist structure vs. seeds).
	RePlaceMapped bool
	// AutoTune implements the paper's §5 remedy for misleading wire
	// estimates ("we could repeat the mapping with reduced wire cost
	// weight to obtain better solutions") as a small portfolio: the Lily
	// flow is run with the default setting, with a fresh backend
	// placement, with periodic re-placement, and with a reduced λ, and
	// the best measured outcome (delay or chip area, per the objective)
	// is returned. Only affects MapperLily.
	AutoTune bool
	// TreeMode restricts the MIS baseline to DAGON tree covering.
	TreeMode bool
	// VerifyEquivalence checks the mapped netlist against the source
	// circuit — formally with BDDs, falling back to randomized simulation
	// when the formal engine's node budget is exceeded — and fails the
	// flow on any mismatch.
	VerifyEquivalence bool
	// FanoutOptimize enables the buffer-tree postprocessing pass the
	// paper lists as future work (§5): after mapping, nets with more
	// than MaxFanout sinks are split by spatially clustered buffer trees.
	FanoutOptimize bool
	// MaxFanout bounds driver fanout when FanoutOptimize is on
	// (default 6).
	MaxFanout int
	// AnnealPlacement enables simulated-annealing refinement in the
	// detailed placer (closer to the paper's TimberWolf backend).
	AnnealPlacement bool
	// ClockPeriodNS, when positive, adds a slack analysis against this
	// clock period to the result (WorstSlackNS, ViolatingCells).
	ClockPeriodNS float64
	// PreOptimize runs the technology-independent optimization phase
	// (constant propagation, cover simplification, common-cube
	// extraction, low-value elimination) on a copy of the circuit before
	// premapping — the MIS step the paper's pipeline consumes upstream.
	PreOptimize bool
	// LayoutDrivenDecomposition premaps with spatially ordered
	// decomposition trees (Fig 1.1b): the source network is placed first
	// and each node's literals enter its NAND2/INV tree grouped by
	// placement proximity, preserving the mapper's option to split large
	// matches along spatial cluster boundaries.
	LayoutDrivenDecomposition bool
	// Parallelism bounds the intra-run worker count for Lily's
	// wave-parallel cone mapping and the placer's partitioned solves
	// (DESIGN.md §13). It is a throughput knob only: the mapped output
	// is byte-identical at every setting, so it does not participate in
	// the engine's request digest. 0 or 1 runs sequentially.
	Parallelism int
	// MultilevelThreshold sets the movable-cell count above which every
	// global placement in the flow (the mapper's seed placement, its
	// periodic re-placements, and the layout backend) switches to the
	// multilevel V-cycle (DESIGN.md §15). Zero keeps the default
	// (25000); a negative value disables multilevel placement entirely.
	// Semantically significant: placements differ across thresholds, so
	// the engine's request digest includes it.
	MultilevelThreshold int
}

// FlowResult reports a completed pipeline run with the paper's metrics.
type FlowResult struct {
	Circuit   string
	Mapper    Mapper
	Objective Objective
	// Target is the implementation technology the run mapped onto.
	Target TechnologyTarget

	// Gates is the mapped cell count.
	Gates int
	// GateHistogram counts cells per library gate.
	GateHistogram map[string]int
	// ActiveAreaMM2 is the summed gate area (Table 1 "inst area").
	ActiveAreaMM2 float64
	// ChipAreaMM2 is the final die area after the channel-routing model
	// (Table 1 "chip area").
	ChipAreaMM2 float64
	// WirelengthMM is the total routed interconnect length (Table 1 "WL").
	WirelengthMM float64
	// DelayNS is the longest path delay including wiring (Table 2).
	DelayNS float64
	// CriticalPath lists the gate names along the critical path.
	CriticalPath []string
	// Rows and PeakChannelDensity describe the layout.
	Rows                int
	PeakChannelDensity  int
	SubjectNodes        int // inchoate NAND2/INV node count
	LilyReincarnations  int // logic duplication events (Lily only)
	LilyConesProcessed  int
	BuffersInserted     int     // fanout-optimization buffers (if enabled)
	WorstSlackNS        float64 // against ClockPeriodNS (when set)
	ViolatingCells      int     // cells with negative slack (when set)
	EstimatorDivergence float64 // |constructive - routed| / routed wirelength (Lily only)
}

func (r *FlowResult) String() string {
	target := ""
	if r.Target != TargetASIC {
		target = "@" + r.Target.String()
	}
	return fmt.Sprintf("%s/%s/%s%s: gates=%d inst=%.3fmm² chip=%.3fmm² wl=%.2fmm delay=%.2fns",
		r.Circuit, r.Mapper, r.Objective, target, r.Gates, r.ActiveAreaMM2, r.ChipAreaMM2,
		r.WirelengthMM, r.DelayNS)
}

// RunFlow executes one full pipeline: premap → (global place) → map →
// detailed place → route model → timing.
func RunFlow(c *Circuit, opt FlowOptions) (*FlowResult, error) {
	return RunFlowContext(context.Background(), c, opt)
}

// RunFlowContext is RunFlow with cancellation: the long-running phases
// (global placement iterations, Lily's per-cone mapping loop) poll ctx and
// abort promptly with its error when it is cancelled or times out, so
// callers — notably the concurrent flow engine — can bound and cancel
// in-flight pipeline runs.
func RunFlowContext(ctx context.Context, c *Circuit, opt FlowOptions) (*FlowResult, error) {
	if opt.AutoTune && opt.Mapper == MapperLily {
		return runPortfolio(ctx, c, opt)
	}
	return runFlowOnce(ctx, c, opt)
}

// runPortfolio tries the Lily flow under a handful of §5-inspired
// configurations concurrently and keeps the best measured result. A
// failing variant is skipped rather than aborting the portfolio; the
// portfolio fails only when every variant fails. Each variant runs on its
// own clone of the circuit, and the winner is chosen by a deterministic
// in-order scan, so the outcome is identical to the historical sequential
// evaluation.
func runPortfolio(ctx context.Context, c *Circuit, opt FlowOptions) (*FlowResult, error) {
	base := opt
	base.AutoTune = false
	type variantDef struct {
		name string
		mod  func(FlowOptions) FlowOptions
	}
	variants := []variantDef{
		{"default", func(o FlowOptions) FlowOptions { return o }},
		{"replace-mapped", func(o FlowOptions) FlowOptions { o.RePlaceMapped = true; return o }},
		{"replace-every-10", func(o FlowOptions) FlowOptions { o.ReplaceEvery = 10; return o }},
		{"wire-weight-0.5", func(o FlowOptions) FlowOptions { o.WireWeight = 0.5; return o }},
	}
	ctx, pspan := obs.StartSpan(ctx, "portfolio")
	defer pspan.End()
	results := make([]*FlowResult, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		// One child span per variant — losers included, so a trace shows
		// what every arm of the portfolio cost.
		vctx, vspan := obs.StartSpan(ctx, "variant")
		vspan.SetInt("index", int64(i))
		vspan.SetStr("config", v.name)
		go func(i int, vopt FlowOptions, vctx context.Context, vspan *obs.Span) {
			defer wg.Done()
			defer vspan.End()
			defer func() {
				if r := recover(); r != nil {
					// Keep the goroutine stack: without it a portfolio
					// panic is undiagnosable (the recover site is here,
					// not at the fault).
					stack := debug.Stack()
					errs[i] = fmt.Errorf("lily: portfolio variant %d panicked: %v\n%s", i, r, stack)
					vspan.SetStr("stack", string(stack))
					vspan.SetError(errs[i])
				}
			}()
			results[i], errs[i] = runFlowOnce(vctx, c.Clone(), vopt)
			vspan.SetError(errs[i])
		}(i, v.mod(base), vctx, vspan)
	}
	wg.Wait()
	best := -1
	for i, res := range results {
		if errs[i] != nil || res == nil {
			continue
		}
		if best < 0 || betterResult(res, results[best], opt.Objective) {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("lily: all portfolio variants failed: %w", errors.Join(errs...))
	}
	pspan.SetInt("winner", int64(best))
	pspan.SetStr("winner_config", variants[best].name)
	return results[best], nil
}

func betterResult(a, b *FlowResult, o Objective) bool {
	if o == ObjectiveDelay {
		return a.DelayNS < b.DelayNS
	}
	return a.ChipAreaMM2 < b.ChipAreaMM2
}

// SVGOptions controls layout rendering (see RenderLayoutSVG).
type SVGOptions struct {
	// Scale is pixels per µm (default 0.25).
	Scale float64
	// DrawNets renders spanning trees for the longest nets.
	DrawNets bool
	// MaxNets caps the number of nets drawn; 0 draws all when DrawNets.
	MaxNets int
}

// RenderLayoutSVG runs a pipeline and writes the finished layout as an SVG
// image to w, returning the flow metrics.
func RenderLayoutSVG(c *Circuit, opt FlowOptions, w io.Writer, svgOpt SVGOptions) (*FlowResult, error) {
	return RenderLayoutSVGContext(context.Background(), c, opt, w, svgOpt)
}

// RenderLayoutSVGContext is RenderLayoutSVG with cancellation (see
// RunFlowContext).
func RenderLayoutSVGContext(ctx context.Context, c *Circuit, opt FlowOptions, w io.Writer, svgOpt SVGOptions) (*FlowResult, error) {
	res, lres, err := runPipeline(ctx, c, opt)
	if err != nil {
		return nil, err
	}
	if err := layout.WriteSVG(w, lres, layout.SVGOptions{
		Scale: svgOpt.Scale, DrawNets: svgOpt.DrawNets, MaxNets: svgOpt.MaxNets,
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteMappedBLIF runs a pipeline and writes the mapped, placed netlist as
// SIS-style .gate BLIF (with placement attached as #@ directives), so
// external tools can consume the result.
func WriteMappedBLIF(c *Circuit, opt FlowOptions, w io.Writer) (*FlowResult, error) {
	return WriteMappedBLIFContext(context.Background(), c, opt, w)
}

// WriteMappedBLIFContext is WriteMappedBLIF with cancellation (see
// RunFlowContext), for parity with the other pipeline entry points.
func WriteMappedBLIFContext(ctx context.Context, c *Circuit, opt FlowOptions, w io.Writer) (*FlowResult, error) {
	res, lres, err := runPipeline(ctx, c, opt)
	if err != nil {
		return nil, err
	}
	if err := netlist.WriteBLIF(w, lres.Netlist); err != nil {
		return nil, err
	}
	return res, nil
}

func runFlowOnce(ctx context.Context, c *Circuit, opt FlowOptions) (*FlowResult, error) {
	res, _, err := runPipeline(ctx, c, opt)
	return res, err
}

func runPipeline(ctx context.Context, c *Circuit, opt FlowOptions) (*FlowResult, *layout.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opt.Target < TargetASIC || opt.Target > TargetLUT6 {
		return nil, nil, fmt.Errorf("lily: unknown target %d", opt.Target)
	}
	if opt.Target != TargetASIC && opt.Mapper != MapperLily {
		return nil, nil, fmt.Errorf("lily: target %s requires the lily mapper", opt.Target)
	}
	lib := library.Big()
	if opt.Library == LibraryTiny {
		lib = library.Tiny()
	}
	if opt.WireWeight == 0 {
		opt.WireWeight = 1.0
	}
	srcNet := c.net
	if opt.PreOptimize {
		// Optimize a copy so the caller's Circuit is untouched.
		_, sp := obs.StartSpan(ctx, "preopt")
		srcNet = c.net.Clone()
		if _, err := netopt.Optimize(srcNet, netopt.DefaultOptions()); err != nil {
			sp.SetError(err)
			sp.End()
			return nil, nil, err
		}
		sp.End()
		c = &Circuit{net: srcNet}
	}

	var pre *decomp.Result
	var err error
	pctx, sp := obs.StartSpan(ctx, "premap")
	if opt.LayoutDrivenDecomposition {
		pre, err = placedPremap(pctx, c.net, lib, opt)
	} else {
		pre, err = decomp.Premap(c.net)
	}
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, nil, err
	}
	sub := pre.Inchoate
	if sp.Enabled() {
		sp.SetInt("subject_nodes", int64(sub.NumLogic()))
	}
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	var nl *netlist.Netlist
	var lilyStats core.LifecycleStats
	switch opt.Mapper {
	case MapperLily:
		copt := core.DefaultOptions(coreMode(opt.Objective))
		copt.Target = coreTarget(opt.Target)
		copt.WireWeight = opt.WireWeight
		copt.Update = coreUpdate(opt.Update)
		copt.WireModel = wireModel(opt.Estimator)
		copt.OrderCones = !opt.DisableConeOrdering
		copt.ReplaceEvery = opt.ReplaceEvery
		copt.Place.NaivePads = opt.NaivePads
		copt.TwoPassDelay = opt.TwoPassDelay
		copt.Parallelism = opt.Parallelism
		copt.Place.Parallelism = opt.Parallelism
		applyMultilevel(&copt.Place, opt)
		res, err := core.MapContext(ctx, sub, lib, copt)
		if err != nil {
			return nil, nil, err
		}
		nl = res.Netlist
		lilyStats = res.Stats
	case MapperMIS:
		// MIS covers without placement feedback; its DP is still the
		// cover phase of the pipeline.
		_, msp := obs.StartSpan(ctx, "cover")
		msp.SetStr("mapper", "mis2.1")
		mopt := mis.DefaultOptions(misMode(opt.Objective))
		mopt.TreeMode = opt.TreeMode
		nl, err = mis.Map(sub, lib, mopt)
		if err != nil {
			msp.SetError(err)
			msp.End()
			return nil, nil, err
		}
		msp.End()
	default:
		return nil, nil, fmt.Errorf("lily: unknown mapper %d", opt.Mapper)
	}

	if opt.RePlaceMapped {
		for _, cell := range nl.Cells {
			cell.Pos = geom.Point{}
		}
	}

	var buffersInserted int
	if opt.FanoutOptimize {
		_, fsp := obs.StartSpan(ctx, "fanout")
		// Buffer placement needs positions; MIS netlists get their global
		// placement first (the backend would have run it anyway).
		if !layout.HasSeedPositions(nl) {
			pcfg := place.DefaultConfig()
			applyMultilevel(&pcfg, opt)
			if err := layout.GlobalPlace(nl, lib, pcfg); err != nil {
				fsp.SetError(err)
				fsp.End()
				return nil, nil, err
			}
		}
		fopt := fanout.DefaultOptions()
		if opt.MaxFanout >= 2 {
			fopt.MaxFanout = opt.MaxFanout
		}
		fst, err := fanout.Optimize(nl, lib, fopt)
		if err != nil {
			fsp.SetError(err)
			fsp.End()
			return nil, nil, err
		}
		buffersInserted = fst.BuffersInserted
		fsp.SetInt("buffers_inserted", int64(buffersInserted))
		fsp.End()
	}

	if opt.VerifyEquivalence {
		_, vsp := obs.StartSpan(ctx, "verify")
		if err := verifyEquivalent(c.net, nl); err != nil {
			vsp.SetError(err)
			vsp.End()
			return nil, nil, err
		}
		vsp.End()
	}

	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	lopt := layout.DefaultOptions()
	lopt.Anneal = opt.AnnealPlacement
	lopt.Place.Parallelism = opt.Parallelism
	applyMultilevel(&lopt.Place, opt)
	_, lsp := obs.StartSpan(ctx, "layout")
	lres, err := layout.Place(nl, lib, lopt)
	if err != nil {
		lsp.SetError(err)
		lsp.End()
		return nil, nil, err
	}
	if lsp.Enabled() {
		lsp.SetInt("rows", int64(lres.Rows))
		lsp.SetFloat("chip_area_mm2", lres.ChipAreaMM2())
		lsp.SetFloat("wirelength_mm", lres.WirelengthMM())
	}
	lsp.End()
	_, tsp := obs.StartSpan(ctx, "timing")
	topt := timing.DefaultOptions()
	tres, err := timing.Analyze(nl, lib, topt)
	if err != nil {
		tsp.SetError(err)
		tsp.End()
		return nil, nil, err
	}
	var slackRep *timing.SlackReport
	if opt.ClockPeriodNS > 0 {
		slackRep, err = timing.Slack(nl, lib, tres, opt.ClockPeriodNS)
		if err != nil {
			tsp.SetError(err)
			tsp.End()
			return nil, nil, err
		}
	}
	tsp.SetFloat("delay_ns", tres.MaxDelay)
	tsp.End()

	out := &FlowResult{
		Circuit:            c.net.Name,
		Mapper:             opt.Mapper,
		Objective:          opt.Objective,
		Target:             opt.Target,
		Gates:              len(nl.Cells),
		GateHistogram:      nl.Stat().ByGate,
		ActiveAreaMM2:      lres.ActiveAreaMM2(),
		ChipAreaMM2:        lres.ChipAreaMM2(),
		WirelengthMM:       lres.WirelengthMM(),
		DelayNS:            tres.MaxDelay,
		Rows:               lres.Rows,
		SubjectNodes:       sub.NumLogic(),
		LilyReincarnations: lilyStats.Reincarnations,
		LilyConesProcessed: lilyStats.ConesProcessed,
		BuffersInserted:    buffersInserted,
	}
	if slackRep != nil {
		out.WorstSlackNS = slackRep.WorstSlack
		out.ViolatingCells = slackRep.ViolatingCells
	}
	for _, d := range lres.ChannelDensities {
		if d > out.PeakChannelDensity {
			out.PeakChannelDensity = d
		}
	}
	for _, step := range tres.CriticalPath {
		out.CriticalPath = append(out.CriticalPath, step.Name)
	}
	return out, lres, nil
}

func coreMode(o Objective) core.Mode {
	if o == ObjectiveDelay {
		return core.ModeDelay
	}
	return core.ModeArea
}

func misMode(o Objective) mis.Mode {
	if o == ObjectiveDelay {
		return mis.ModeDelay
	}
	return mis.ModeArea
}

func coreTarget(t TechnologyTarget) core.Target {
	switch t {
	case TargetLUT4:
		return core.TargetLUT4
	case TargetLUT6:
		return core.TargetLUT6
	default:
		return core.TargetASIC
	}
}

func coreUpdate(u PlacementUpdate) core.UpdateRule {
	switch u {
	case UpdateCMOfMerged:
		return core.CMOfMerged
	case UpdateMedianFans:
		return core.MedianFans
	default:
		return core.CMOfFans
	}
}

func wireModel(e WireEstimator) wire.Model {
	if e == WireSpanningTree {
		return wire.ModelSpanningTree
	}
	return wire.ModelHPWLSteiner
}

// applyMultilevel resolves FlowOptions.MultilevelThreshold onto one
// placement config: positive overrides the default, negative disables
// the V-cycle (place treats a zero threshold as "never engage").
func applyMultilevel(cfg *place.Config, opt FlowOptions) {
	if opt.MultilevelThreshold > 0 {
		cfg.MultilevelThreshold = opt.MultilevelThreshold
	} else if opt.MultilevelThreshold < 0 {
		cfg.MultilevelThreshold = 0
	}
}

// placedPremap implements the layout-oriented decomposition of Fig 1.1b:
// place the source network (gates approximated by the NAND2 base cell),
// then decompose each node with its literals ordered by recursive spatial
// bipartition of their placed positions.
func placedPremap(ctx context.Context, net *logic.Network, lib *library.Library, opt FlowOptions) (*decomp.Result, error) {
	cfg := place.DefaultConfig()
	applyMultilevel(&cfg, opt)
	pr, err := place.GlobalContext(ctx, net, func(logic.NodeID) float64 { return lib.Nand2.Width },
		lib.RowHeight, cfg)
	if err != nil {
		return nil, err
	}
	return decomp.PremapPlaced(net, pr.Pos)
}

// verifyEquivalent checks the mapped netlist against the source formally
// (BDD, with a simulation fallback for circuits that blow the node budget).
func verifyEquivalent(src *logic.Network, nl *netlist.Netlist) error {
	res, err := equiv.Check(src, nl, equiv.DefaultOptions())
	if err != nil {
		return err
	}
	if !res.Equivalent {
		return fmt.Errorf("lily: mapped netlist differs from source at output %q (found by %v, counterexample %v)",
			res.FailingOutput, res.Method, res.Counterexample)
	}
	return nil
}
