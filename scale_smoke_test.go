// Scale smoke test: one large generated circuit through the complete
// pipeline — premap, layout-driven mapping, multilevel placement, layout,
// timing — twice, asserting the two runs produce byte-identical mapped
// BLIF and, when a budget is set, that each run fits the wall-clock
// budget. This is the frontier gate behind the ROADMAP's "production
// scale" yardstick: the CI scale-smoke job runs it at gen100k with a
// 60-second budget (LILY_SCALE_PROFILE=gen100k LILY_SCALE_BUDGET_S=60),
// while the default tier-1 run covers gen50k with no budget so slow or
// shared machines cannot flake.
package lily_test

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"lily"
)

func TestScaleSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("scale smoke excluded under -race (covered raceless by the scale-smoke CI job)")
	}
	if testing.Short() {
		t.Skip("scale smoke skipped under -short")
	}
	profile := os.Getenv("LILY_SCALE_PROFILE")
	if profile == "" {
		profile = "gen50k"
	}
	var budget time.Duration
	if s := os.Getenv("LILY_SCALE_BUDGET_S"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad LILY_SCALE_BUDGET_S %q", s)
		}
		budget = time.Duration(secs) * time.Second
	}

	c, err := lily.GenerateBenchmark(profile)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	t.Logf("%s: %d PIs, %d POs, %d nodes, depth %d", profile, st.PIs, st.POs, st.Nodes, st.Depth)

	run := func(i, par int) []byte {
		opt := lily.FlowOptions{
			Mapper:      lily.MapperLily,
			Objective:   lily.ObjectiveArea,
			Parallelism: par,
		}
		var buf bytes.Buffer
		start := time.Now()
		// Clone: a flow mutates nothing in the circuit, but the isolation
		// mirrors how the engine runs concurrent jobs.
		res, err := lily.WriteMappedBLIF(c.Clone(), opt, &buf)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		elapsed := time.Since(start)
		t.Logf("run %d: %v, %d gates, %d subject nodes, chip %.3f mm²",
			i, elapsed, res.Gates, res.SubjectNodes, res.ChipAreaMM2)
		if budget > 0 && elapsed > budget {
			t.Errorf("run %d took %v, budget %v", i, elapsed, budget)
		}
		return buf.Bytes()
	}
	// The second run drops to Parallelism=1, so the byte-equality check
	// covers both run-to-run determinism and parallelism invariance at
	// frontier scale — the GOMAXPROCS×Parallelism soak's property,
	// extended to a ≥50k-gate circuit.
	first := run(1, runtime.NumCPU())
	second := run(2, 1)
	if !bytes.Equal(first, second) {
		t.Fatal("two runs of the same scale pipeline produced different mapped BLIF")
	}
}
