// Determinism guarantees underpin the flow engine's content-addressed
// result cache and the parallel table generation: a FlowOptions-keyed run
// must produce byte-identical results no matter when, where, or alongside
// what it executes. These tests pin that property at the public API
// boundary (external test package so it can also drive the engine, which
// imports lily).
package lily_test

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"lily"
	"lily/internal/engine"
)

// resultBytes canonicalizes a FlowResult for byte-wise comparison
// (encoding/json sorts the GateHistogram map keys).
func resultBytes(t *testing.T, r *lily.FlowResult) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runOn(t *testing.T, name string, opt lily.FlowOptions) []byte {
	t.Helper()
	c, err := lily.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lily.RunFlow(c, opt)
	if err != nil {
		t.Fatalf("RunFlow(%s, %+v): %v", name, opt, err)
	}
	return resultBytes(t, res)
}

// TestRunFlowDeterministic asserts that two identical RunFlow invocations
// on the same benchmark produce byte-identical FlowResults — the
// correctness precondition for the engine's cache keying.
func TestRunFlowDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  lily.FlowOptions
	}{
		{"b9", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}},
		{"b9", lily.FlowOptions{Mapper: lily.MapperMIS, Objective: lily.ObjectiveArea}},
		{"misex1", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveDelay}},
	} {
		a := runOn(t, tc.name, tc.opt)
		b := runOn(t, tc.name, tc.opt)
		if !bytes.Equal(a, b) {
			t.Errorf("%s/%s/%s: repeated runs differ:\n%s\n%s",
				tc.name, tc.opt.Mapper, tc.opt.Objective, a, b)
		}
	}
}

// TestAutoTunePortfolioDeterministic pins the concurrent portfolio: the
// four §5 variants race on separate goroutines, but the winner must be
// the same on every invocation (deterministic in-order selection).
func TestAutoTunePortfolioDeterministic(t *testing.T) {
	opt := lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea, AutoTune: true}
	a := runOn(t, "misex1", opt)
	b := runOn(t, "misex1", opt)
	if !bytes.Equal(a, b) {
		t.Fatalf("AutoTune portfolio nondeterministic:\n%s\n%s", a, b)
	}
}

// TestCloneRunsIdentically asserts a cloned circuit maps byte-identically
// to its original — clones are how the engine and the portfolio isolate
// concurrent runs, so any divergence would corrupt cached results.
func TestCloneRunsIdentically(t *testing.T) {
	c, err := lily.GenerateBenchmark("b9")
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	opt := lily.FlowOptions{Mapper: lily.MapperLily}
	orig, err := lily.RunFlow(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := lily.RunFlow(clone, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, orig), resultBytes(t, cloned)) {
		t.Fatalf("clone mapped differently:\n%s\n%s", resultBytes(t, orig), resultBytes(t, cloned))
	}
}

// TestEngineMatchesDirectRun asserts the worker-pool path is observably
// identical to the in-process path — the property that lets cmd/tables
// fan out across the engine without changing the paper's tables.
func TestEngineMatchesDirectRun(t *testing.T) {
	opt := lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}
	direct := runOn(t, "misex1", opt)

	eng := engine.New(engine.Config{Workers: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()
	out, err := eng.Run(context.Background(), engine.Request{Benchmark: "misex1", Options: opt})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if got := resultBytes(t, out.Result); !bytes.Equal(direct, got) {
		t.Fatalf("engine result differs from direct run:\n%s\n%s", direct, got)
	}
}

// mappedBytes runs the full pipeline and returns the mapped, placed
// netlist as the exact bytes WriteMappedBLIF emits.
func mappedBytes(t *testing.T, name string, opt lily.FlowOptions) []byte {
	t.Helper()
	c, err := lily.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := lily.WriteMappedBLIF(c, opt, &buf); err != nil {
		t.Fatalf("WriteMappedBLIF(%s, %+v): %v", name, opt, err)
	}
	return buf.Bytes()
}

// TestMappedBLIFGOMAXPROCSInvariant is the determinism soak guarding the
// hot-path work (DESIGN.md §11): the mapped netlist bytes must not depend
// on scheduler parallelism. Each circuit/objective pair maps under
// GOMAXPROCS ∈ {1, 2, NumCPU} and every run must emit byte-identical
// BLIF — the scratch pools, memoized match lists, and epoch caches the
// cover DP reuses are all per-run state, so any divergence here means
// shared mutable state leaked between goroutines. CI additionally runs
// this under -race (the full-suite race pass), which turns such leaks
// into hard failures even when the bytes happen to agree.
func TestMappedBLIFGOMAXPROCSInvariant(t *testing.T) {
	levels := dedupLevels([]int{1, 2, runtime.NumCPU()})
	cases := []struct {
		name string
		opt  lily.FlowOptions
	}{
		{"misex1", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}},
		{"misex1", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveDelay}},
		// AutoTune races the §5 portfolio on separate goroutines; its
		// winner selection must also be schedule-independent.
		{"misex1", lily.FlowOptions{Mapper: lily.MapperLily, AutoTune: true}},
		{"b9", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}},
		// The LUT backend shares the wave-parallel commit machinery, so
		// both tile sizes get the same byte-identity soak as ASIC.
		{"b9", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea, Target: lily.TargetLUT4}},
		{"b9", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveDelay, Target: lily.TargetLUT6}},
		{"misex1", lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea, Target: lily.TargetLUT6}},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, tc := range cases {
		var want []byte
		for _, procs := range levels {
			runtime.GOMAXPROCS(procs)
			// The intra-job Parallelism knob must be invisible in the
			// bytes at every scheduler width — that is the contract that
			// lets the engine digest exclude it.
			for _, par := range levels {
				opt := tc.opt
				opt.Parallelism = par
				got := mappedBytes(t, tc.name, opt)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s/%v@%v: GOMAXPROCS=%d Parallelism=%d changed the mapped BLIF (%d vs %d bytes)",
						tc.name, tc.opt.Objective, tc.opt.Target, procs, par, len(want), len(got))
				}
			}
		}
	}
}

// dedupLevels drops repeated parallelism levels (NumCPU is often 1 or 2)
// while preserving order.
func dedupLevels(in []int) []int {
	var out []int
	for _, v := range in {
		dup := false
		for _, u := range out {
			dup = dup || u == v
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// TestConcurrentParallelRuns is the pooled-scratch regression for the
// wave-parallel mapper: several parallel-mode pipelines run at once, so
// wire.Scratch buffers are borrowed concurrently by overlapping worker
// pools. Every run must still emit the sequential bytes — and under
// -race (CI's race-lifecycle job) any scratch object shared between two
// borrowers is a hard failure, not just a byte mismatch.
func TestConcurrentParallelRuns(t *testing.T) {
	opt := lily.FlowOptions{Mapper: lily.MapperLily, Objective: lily.ObjectiveArea}
	want := mappedBytes(t, "misex1", opt)

	const runs = 6
	outs := make([][]byte, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := lily.GenerateBenchmark("misex1")
			if err != nil {
				errs[i] = err
				return
			}
			popt := opt
			popt.Parallelism = 2 + i%3
			var buf bytes.Buffer
			if _, err := lily.WriteMappedBLIF(c, popt, &buf); err != nil {
				errs[i] = err
				return
			}
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Errorf("run %d (Parallelism=%d): bytes diverge from sequential (%d vs %d)",
				i, 2+i%3, len(outs[i]), len(want))
		}
	}
}

// TestRunFlowContextCancelled asserts an already-cancelled context aborts
// the flow without doing work.
func TestRunFlowContextCancelled(t *testing.T) {
	c, err := lily.GenerateBenchmark("misex1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lily.RunFlowContext(ctx, c, lily.FlowOptions{}); err != context.Canceled {
		t.Fatalf("RunFlowContext on cancelled ctx = %v, want context.Canceled", err)
	}
}
